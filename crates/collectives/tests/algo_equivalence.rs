//! The message-size-aware algorithms (recursive-halving reduce-scatter,
//! recursive-doubling all-gather, recursive halving/doubling and
//! binomial-tree all-reduce, binomial-tree broadcast) must be provably
//! correct against serial oracles for every group size they are legal
//! on — including non-power-of-two groups for the trees — and the
//! selection policy must record the algorithm it actually ran in the
//! schedule plane on both sides of every [`AlgoPolicy`] threshold.
//!
//! Reductions are checked *bitwise* against the serial replay oracles in
//! `axonn_collectives::reference`, which reproduce each algorithm's fold
//! order exactly; pure data movement (all-gather, broadcast) is checked
//! bitwise against the ring reference since any algorithm must agree.

use axonn_collectives::reference::{
    replay_rh_reduce_scatter, replay_rhd_all_reduce, replay_tree_all_reduce,
};
use axonn_collectives::sched::SchedEvent;
use axonn_collectives::{
    AgAlgo, AlgoPolicy, ArAlgo, BcastAlgo, Comm, CommError, CommWorld, ProcessGroup, ReduceOp,
    RsAlgo, SchedKind,
};
use proptest::prelude::*;
use std::thread;

/// Run `body` on every rank of a pre-built world; collect results.
fn spmd_world<T: Send + 'static>(
    comms: Vec<Comm>,
    body: impl Fn(Comm) -> T + Send + Sync + Clone + 'static,
) -> Vec<T> {
    let handles: Vec<_> = comms
        .into_iter()
        .map(|c| {
            let body = body.clone();
            thread::spawn(move || body(c))
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

/// Deterministic per-rank buffer with irrational-ish values so float
/// fold-order differences actually show up bitwise.
fn buffer(rank: usize, len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| (((rank * 131 + i * 17) % 97) as f32).sin() * 3.7)
        .collect()
}

fn forced_world(size: usize, policy: AlgoPolicy) -> Vec<Comm> {
    CommWorld::builder(size).algo(policy).build()
}

fn assert_bitwise(got: &[f32], want: &[f32]) {
    assert_eq!(got.len(), want.len());
    for (a, b) in got.iter().zip(want.iter()) {
        assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Recursive halving/doubling all-reduce vs its serial replay,
    /// bitwise, on every power-of-two group size, payload lengths that
    /// include indivisible (padded) and size-1 cases, Sum and Max.
    #[test]
    fn rhd_all_reduce_matches_serial_replay(
        world_log2 in 1u32..4,
        len in 1usize..60,
        use_max in 0usize..2,
    ) {
        let world = 1usize << world_log2;
        let op = if use_max == 1 { ReduceOp::Max } else { ReduceOp::Sum };
        let mut policy = AlgoPolicy::ring_only();
        policy.force_ar = Some(ArAlgo::Rhd);
        let comms = forced_world(world, policy);
        let results = spmd_world(comms, move |c| {
            let g = ProcessGroup::new((0..world).collect());
            let mut buf = buffer(c.rank(), len);
            c.all_reduce_op(&g, &mut buf, op);
            buf
        });
        let inputs: Vec<Vec<f32>> = (0..world).map(|r| buffer(r, len)).collect();
        let expect = replay_rhd_all_reduce(&inputs, op);
        for got in &results {
            assert_bitwise(got, &expect);
        }
    }

    /// Binomial-tree all-reduce vs its serial replay, bitwise, on every
    /// group size 1–9 including non-powers-of-two.
    #[test]
    fn tree_all_reduce_matches_serial_replay(
        world in 1usize..10,
        len in 1usize..60,
        use_max in 0usize..2,
    ) {
        let op = if use_max == 1 { ReduceOp::Max } else { ReduceOp::Sum };
        let mut policy = AlgoPolicy::ring_only();
        policy.force_ar = Some(ArAlgo::Tree);
        let comms = forced_world(world, policy);
        let results = spmd_world(comms, move |c| {
            let g = ProcessGroup::new((0..world).collect());
            let mut buf = buffer(c.rank(), len);
            c.all_reduce_op(&g, &mut buf, op);
            buf
        });
        let inputs: Vec<Vec<f32>> = (0..world).map(|r| buffer(r, len)).collect();
        let expect = replay_tree_all_reduce(&inputs, op);
        for got in &results {
            assert_bitwise(got, &expect);
        }
    }

    /// Recursive-halving reduce-scatter vs its serial replay, bitwise,
    /// on every power-of-two group size.
    #[test]
    fn rh_reduce_scatter_matches_serial_replay(
        world_log2 in 1u32..4,
        per in 1usize..24,
    ) {
        let world = 1usize << world_log2;
        let mut policy = AlgoPolicy::ring_only();
        policy.force_rs = Some(RsAlgo::Rh);
        let comms = forced_world(world, policy);
        let results = spmd_world(comms, move |c| {
            let g = ProcessGroup::new((0..world).collect());
            c.reduce_scatter(&g, &buffer(c.rank(), per * world))
        });
        let inputs: Vec<Vec<f32>> = (0..world).map(|r| buffer(r, per * world)).collect();
        let expect = replay_rh_reduce_scatter(&inputs, ReduceOp::Sum);
        for (pos, got) in results.iter().enumerate() {
            assert_bitwise(got, &expect[pos]);
        }
    }

    /// Recursive-doubling all-gather is pure data movement: bitwise
    /// equal to the ring reference on every power-of-two group size.
    #[test]
    fn rd_all_gather_matches_ring_reference(
        world_log2 in 1u32..4,
        shard in 1usize..48,
    ) {
        let world = 1usize << world_log2;
        let mut policy = AlgoPolicy::ring_only();
        policy.force_ag = Some(AgAlgo::Rd);
        let comms = forced_world(world, policy);
        let results = spmd_world(comms, move |c| {
            let g = ProcessGroup::new((0..world).collect());
            let rd = c.all_gather(&g, &buffer(c.rank(), shard));
            let reference = c.reference_all_gather(&g, &buffer(c.rank(), shard));
            (rd, reference)
        });
        for (rd, reference) in results {
            prop_assert_eq!(rd, reference);
        }
    }

    /// Binomial-tree broadcast delivers the root's buffer verbatim on
    /// every group size 1–9 (incl. non-powers-of-two) from any root.
    #[test]
    fn tree_broadcast_matches_root_buffer(
        world in 1usize..10,
        len in 1usize..64,
        root in 0usize..10,
    ) {
        let root = root % world;
        let mut policy = AlgoPolicy::ring_only();
        policy.force_bcast = Some(BcastAlgo::Tree);
        let comms = forced_world(world, policy);
        let results = spmd_world(comms, move |c| {
            let g = ProcessGroup::new((0..world).collect());
            let mut buf = buffer(root, len);
            c.broadcast(&g, root, &mut buf);
            let mut starred = buffer(root, len);
            c.reference_broadcast(&g, root, &mut starred);
            (buf, starred)
        });
        let expect = buffer(root, len);
        for (tree, starred) in results {
            prop_assert_eq!(&tree, &expect);
            prop_assert_eq!(&tree, &starred);
        }
    }

    /// The async plane routes through the same selection: a forced-RHD
    /// non-blocking all-reduce is bitwise equal to the serial replay.
    #[test]
    fn async_rhd_all_reduce_matches_serial_replay(
        world_log2 in 1u32..3,
        len in 1usize..48,
    ) {
        let world = 1usize << world_log2;
        let mut policy = AlgoPolicy::ring_only();
        policy.force_ar = Some(ArAlgo::Rhd);
        let comms = forced_world(world, policy);
        let results = spmd_world(comms, move |c| {
            let g = ProcessGroup::new((0..world).collect());
            c.iall_reduce(&g, buffer(c.rank(), len)).wait()
        });
        let inputs: Vec<Vec<f32>> = (0..world).map(|r| buffer(r, len)).collect();
        let expect = replay_rhd_all_reduce(&inputs, ReduceOp::Sum);
        for got in &results {
            assert_bitwise(got, &expect);
        }
    }
}

/// The recursive-halving path rejects indivisible buffers with the same
/// typed error as the ring, before any message moves.
#[test]
fn indivisible_rh_reduce_scatter_is_a_typed_error() {
    let mut policy = AlgoPolicy::ring_only();
    policy.force_rs = Some(RsAlgo::Rh);
    let comms = forced_world(4, policy);
    let errs = spmd_world(comms, |c| {
        let g = ProcessGroup::new(vec![0, 1, 2, 3]);
        // 4 ranks, 7 elements: rejected up front.
        c.try_reduce_scatter(&g, &buffer(c.rank(), 7)).unwrap_err()
    });
    for e in errs {
        match e {
            CommError::InvalidBuffer { op, detail } => {
                assert_eq!(op, "reduce_scatter");
                assert!(detail.contains('7') && detail.contains('4'), "{detail}");
            }
            other => panic!("expected InvalidBuffer, got {other:?}"),
        }
    }
}

/// Drive one rank of a dry world through a collective and return the
/// kinds its recorded schedule stream contains.
fn recorded_kinds(world: usize, body: impl Fn(&Comm, &ProcessGroup)) -> Vec<SchedKind> {
    let comms = CommWorld::dry(world);
    let g = ProcessGroup::new((0..world).collect());
    body(&comms[0], &g);
    let streams = comms[0].schedule_streams().expect("dry worlds record");
    streams[0]
        .iter()
        .filter_map(|e| match e {
            SchedEvent::Issue(op) => Some(op.kind),
            _ => None,
        })
        .collect()
}

/// Under the default policy, the schedule plane records the algorithm
/// actually selected on both sides of every threshold — certified
/// against dry (symbolic) extraction, exactly what `axonn-verify` sees.
#[test]
fn default_policy_records_selected_kinds_across_thresholds() {
    let p = AlgoPolicy::default();

    // All-reduce: tree below/at ar_tree_max, RHD between, ring above
    // ar_rhd_max; non-pow2 groups fall back to ring above tree range.
    let ar = |world: usize, elems: usize| {
        recorded_kinds(world, |c, g| c.all_reduce(g, &mut vec![0.0; elems]))
    };
    assert_eq!(ar(4, p.ar_tree_max), vec![SchedKind::AllReduceTree]);
    assert_eq!(ar(4, p.ar_tree_max + 1), vec![SchedKind::AllReduceRhd]);
    assert_eq!(ar(4, p.ar_rhd_max), vec![SchedKind::AllReduceRhd]);
    assert_eq!(ar(4, p.ar_rhd_max + 1), vec![SchedKind::AllReduce]);
    assert_eq!(ar(3, p.ar_tree_max), vec![SchedKind::AllReduceTree]);
    assert_eq!(ar(3, p.ar_tree_max + 1), vec![SchedKind::AllReduce]);

    // Reduce-scatter: recursive halving below/at rs_rh_max on pow2
    // groups, ring otherwise.
    let rs = |world: usize, elems: usize| {
        recorded_kinds(world, |c, g| {
            c.reduce_scatter(g, &vec![0.0; elems]);
        })
    };
    assert_eq!(rs(4, p.rs_rh_max), vec![SchedKind::ReduceScatterRh]);
    assert_eq!(rs(4, p.rs_rh_max + 4), vec![SchedKind::ReduceScatter]);
    assert_eq!(rs(3, 3 * 1024), vec![SchedKind::ReduceScatter]);

    // All-gather: recursive doubling below/at ag_rd_max contributed
    // elements on pow2 groups, ring otherwise.
    let ag = |world: usize, shard: usize| {
        recorded_kinds(world, |c, g| {
            c.all_gather(g, &vec![0.0; shard]);
        })
    };
    assert_eq!(ag(4, p.ag_rd_max), vec![SchedKind::AllGatherRd]);
    assert_eq!(ag(4, p.ag_rd_max + 1), vec![SchedKind::AllGather]);
    assert_eq!(ag(3, 1024), vec![SchedKind::AllGather]);

    // Broadcast: tree below/at bcast_tree_max on any group size, chain
    // above.
    let bc = |world: usize, elems: usize| {
        recorded_kinds(world, |c, g| c.broadcast(g, 0, &mut vec![0.0; elems]))
    };
    assert_eq!(bc(4, p.bcast_tree_max), vec![SchedKind::BroadcastTree]);
    assert_eq!(bc(4, p.bcast_tree_max + 1), vec![SchedKind::Broadcast]);
    assert_eq!(bc(5, p.bcast_tree_max), vec![SchedKind::BroadcastTree]);
}

/// `AXONN_COLL_ALGO`-style specs parse into the same selections the
/// builder override produces — the A/B lever and the builder agree.
#[test]
fn parsed_ring_spec_matches_ring_only() {
    assert_eq!(AlgoPolicy::parse("ring"), AlgoPolicy::ring_only());
    let p = AlgoPolicy::parse("all_reduce=rhd,broadcast=tree");
    assert_eq!(p.force_ar, Some(ArAlgo::Rhd));
    assert_eq!(p.force_bcast, Some(BcastAlgo::Tree));
    assert_eq!(p.force_rs, None);
}
