//! Straggler/hang watchdog: an observer thread that flags ranks whose
//! heartbeat or collective-lane progress stalls past a threshold.
//!
//! The transport stamps per-rank heartbeats on every send, receive
//! completion, and collective entry/exit (see
//! `axonn_collectives::telemetry`); a posted-but-unsatisfied receive is
//! tracked with its peer and lane key. The watchdog polls those beats
//! and reports any rank stuck past the threshold, naming the **rank**,
//! the **pending op**, the **lane key**, and the **peer** it is waiting
//! on — then dumps that rank's flight recorder so the post-mortem has
//! data.
//!
//! The diagnostic is cross-checked against the `verify` schedule plane:
//! when the grid's collective schedule was statically certified
//! deadlock-free (or the completed portion of the run passed runtime
//! matching), a stall cannot be a schedule bug, so the report classifies
//! it as a *runtime* fault — a dead peer, a stalled link (e.g. an `ft`
//! wall-stall injection), or an OS-level straggler. On an uncertified
//! grid the classification stays open.
//!
//! The threshold defaults to `AXONN_WATCHDOG_MS` (2000 ms); a rank is
//! only ever reported once per watchdog (stalls don't re-fire while the
//! same op stays pending).

use axonn_collectives::Comm;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Default stall threshold when `AXONN_WATCHDOG_MS` is unset.
pub const DEFAULT_WATCHDOG_MS: u64 = 2000;

/// Stall threshold from `AXONN_WATCHDOG_MS`, clamped to at least 1 ms.
pub fn watchdog_threshold() -> Duration {
    let ms = std::env::var("AXONN_WATCHDOG_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(DEFAULT_WATCHDOG_MS)
        .max(1);
    Duration::from_millis(ms)
}

/// Watchdog configuration.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// A rank whose pending receive (or in-collective heartbeat) is
    /// older than this is reported as stalled.
    pub threshold: Duration,
    /// How often the observer polls the heartbeat table.
    pub poll: Duration,
    /// Whether the schedule running on this world was certified
    /// deadlock-free by the `verify` plane (statically via
    /// `check_schedules` on a dry extraction, or by a clean runtime
    /// matching pass). Changes the *classification* of a stall, not its
    /// detection.
    pub certified: bool,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            threshold: watchdog_threshold(),
            poll: Duration::from_millis(50),
            certified: false,
        }
    }
}

impl WatchdogConfig {
    /// Default thresholds with the certification flag set.
    pub fn certified(mut self, yes: bool) -> WatchdogConfig {
        self.certified = yes;
        self
    }
}

/// One stalled-rank diagnostic.
#[derive(Debug, Clone)]
pub struct StallReport {
    pub rank: usize,
    /// Milliseconds since the rank last made progress.
    pub heartbeat_age_ms: u64,
    /// Collective the rank was inside, when known.
    pub op: Option<&'static str>,
    /// Lane of the pending receive (`rs`, `ag`, `bcast`, ...).
    pub lane: Option<&'static str>,
    /// Peer the rank is waiting on.
    pub peer: Option<usize>,
    /// Raw message key of the pending receive.
    pub key: Option<u128>,
    /// Schedule-plane cross-check verdict.
    pub classification: String,
    /// Flight-recorder dump written for the stalled rank, when the
    /// write succeeded.
    pub dump: Option<PathBuf>,
}

impl std::fmt::Display for StallReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {} stalled {} ms in {}",
            self.rank,
            self.heartbeat_age_ms,
            self.op.unwrap_or("<no collective>"),
        )?;
        if let (Some(lane), Some(peer)) = (self.lane, self.peer) {
            write!(f, " waiting on rank {peer} (lane {lane})")?;
        }
        write!(f, " — {}", self.classification)
    }
}

/// A running watchdog: observer thread + collected reports.
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    reports: Arc<Mutex<Vec<StallReport>>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Spawn an observer watching `probe`'s world under `cfg`. The
    /// probe is any rank's communicator (observers read world-shared
    /// state, so which rank doesn't matter).
    pub fn spawn(probe: Comm, cfg: WatchdogConfig) -> Watchdog {
        let stop = Arc::new(AtomicBool::new(false));
        let reports = Arc::new(Mutex::new(Vec::new()));
        let stop_t = stop.clone();
        let reports_t = reports.clone();
        let handle = std::thread::Builder::new()
            .name("axonn-watchdog".into())
            .spawn(move || {
                let threshold_ms = cfg.threshold.as_millis() as u64;
                let mut reported = vec![false; probe.world_size()];
                while !stop_t.load(Ordering::Relaxed) {
                    for t in probe.telemetry() {
                        if reported[t.rank] {
                            continue;
                        }
                        // A rank counts as stalled when a posted receive
                        // has been outstanding past the threshold, or
                        // when it sits inside a collective with a stale
                        // heartbeat (covers sender-side hangs).
                        let pending_age = t.pending.as_ref().map(|p| p.age_ms).unwrap_or(0);
                        let stalled = pending_age > threshold_ms
                            || (t.current_op.is_some() && t.heartbeat_age_ms > threshold_ms);
                        if !stalled {
                            continue;
                        }
                        reported[t.rank] = true;
                        let classification = if cfg.certified {
                            "runtime fault (schedule statically certified deadlock-free): \
                             suspect link stall, dead peer, or OS straggler"
                                .to_string()
                        } else {
                            "possible schedule bug or runtime fault (schedule not certified)"
                                .to_string()
                        };
                        let mut report = StallReport {
                            rank: t.rank,
                            heartbeat_age_ms: t.heartbeat_age_ms.max(pending_age),
                            op: t.current_op,
                            lane: t.pending.as_ref().map(|p| p.lane),
                            peer: t.pending.as_ref().map(|p| p.src),
                            key: t.pending.as_ref().map(|p| p.key),
                            classification,
                            dump: None,
                        };
                        probe.flight().record(format!("watchdog trip: {report}"));
                        report.dump = probe.dump_flight_rank(t.rank, &format!("{report}")).ok();
                        reports_t.lock().unwrap().push(report);
                    }
                    std::thread::sleep(cfg.poll);
                }
            })
            .expect("spawn watchdog thread");
        Watchdog {
            stop,
            reports,
            handle: Some(handle),
        }
    }

    /// Reports collected so far (the watchdog may still be running).
    pub fn reports(&self) -> Vec<StallReport> {
        self.reports.lock().unwrap().clone()
    }

    /// Stop the observer and return everything it reported.
    pub fn stop(mut self) -> Vec<StallReport> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        let out = self.reports.lock().unwrap().clone();
        out
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axonn_collectives::{CommWorld, ProcessGroup};

    #[test]
    fn healthy_world_reports_nothing() {
        let comms = CommWorld::create(2);
        let probe = comms[0].clone();
        let dog = Watchdog::spawn(
            probe,
            WatchdogConfig {
                threshold: Duration::from_millis(200),
                poll: Duration::from_millis(10),
                certified: true,
            },
        );
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                std::thread::spawn(move || {
                    let g = ProcessGroup::new((0..2).collect());
                    for _ in 0..20 {
                        let mut v = vec![c.rank() as f32; 64];
                        c.all_reduce(&g, &mut v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let reports = dog.stop();
        assert!(reports.is_empty(), "false positives: {reports:?}");
    }

    #[test]
    fn threshold_env_default() {
        // Only the default path (env var is process-global).
        assert_eq!(DEFAULT_WATCHDOG_MS, 2000);
        assert!(watchdog_threshold() >= Duration::from_millis(1));
    }
}
