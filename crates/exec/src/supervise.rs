//! Fault-tolerant SPMD launching: fallible worlds and the supervisor
//! relaunch loop.
//!
//! [`run_spmd_fallible`] is the recoverable counterpart of `run_spmd`: a
//! panicking rank is *marked dead* on the transport (instead of poisoning
//! the world), so surviving ranks drain out of their collectives with
//! typed [`CommError::PeerLost`] panics that are caught, classified and
//! returned as a [`WorldFailure`] — the launcher never panics and never
//! deadlocks.
//!
//! [`run_spmd_supervised`] drives attempts of such worlds under a
//! caller-supplied *recovery policy*: after each failure the policy
//! decides whether (and how — world size, fault plan, body) to relaunch.
//! Checkpoint-aware policies live in `axonn-ft`; this layer only knows
//! about worlds and failures, and records the recovery lifecycle
//! (failure detected, restart, give up, completed) through `axonn-trace`.

use axonn_collectives::{
    Comm, CommError, CommWorld, FailureKind, FailureRecord, FaultConfig, InjectedKill,
};
use axonn_trace::{EventDetail, RankTrace, Stream, TraceSink};
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::Instant;

/// Why a fallible world run did not return results.
#[derive(Debug, Clone)]
pub struct WorldFailure {
    /// The failure that started the cascade: the first (lowest-rank)
    /// record that is not a secondary `PeerLost`, or the first record
    /// when every rank merely lost a peer.
    pub origin: FailureRecord,
    /// Every rank's failure record, in rank order.
    pub failures: Vec<FailureRecord>,
}

impl std::fmt::Display for WorldFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "world failed: rank {} ({:?}): {} ({} rank(s) affected)",
            self.origin.rank,
            self.origin.kind,
            self.origin.message,
            self.failures.len()
        )
    }
}

/// Classify a caught panic payload into a failure record.
fn classify_panic(rank: usize, e: &(dyn std::any::Any + Send)) -> FailureRecord {
    if let Some(kill) = e.downcast_ref::<InjectedKill>() {
        return FailureRecord {
            rank,
            kind: FailureKind::Killed,
            message: kill.to_string(),
            step: Some(kill.step),
        };
    }
    if let Some(err) = e.downcast_ref::<CommError>() {
        let kind = match err {
            CommError::PeerLost { .. } => FailureKind::PeerLost,
            // A bad buffer is a caller bug at the origin rank, like any
            // other panic — not a cascading peer failure.
            CommError::Poisoned(_) | CommError::InvalidBuffer { .. } => FailureKind::Panic,
        };
        return FailureRecord {
            rank,
            kind,
            message: err.to_string(),
            step: None,
        };
    }
    let message = e
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| e.downcast_ref::<&str>().copied())
        .unwrap_or("<non-string panic payload>")
        .to_string();
    // A poison-format panic is also a secondary casualty, not an origin.
    let kind = if message.starts_with("world poisoned:") {
        FailureKind::PeerLost
    } else {
        FailureKind::Panic
    };
    FailureRecord {
        rank,
        kind,
        message,
        step: None,
    }
}

/// Run `body` on `world_size` ranks with fault injection installed.
/// Returns the per-rank results, or a structured [`WorldFailure`] if any
/// rank panicked. Unlike [`run_spmd`](crate::run_spmd), a failure marks
/// the rank dead (surviving ranks observe `CommError::PeerLost`) and the
/// call returns instead of panicking, so a supervisor can decide what to
/// do next.
pub fn run_spmd_fallible<F, T>(
    world_size: usize,
    faults: FaultConfig,
    body: F,
) -> Result<Vec<T>, WorldFailure>
where
    F: Fn(Comm) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    launch_fallible(CommWorld::create_faulty(world_size, faults), Arc::new(body))
}

pub(crate) fn launch_fallible<T>(
    comms: Vec<Comm>,
    body: Arc<dyn Fn(Comm) -> T + Send + Sync>,
) -> Result<Vec<T>, WorldFailure>
where
    T: Send + 'static,
{
    let handles: Vec<_> = comms
        .into_iter()
        .map(|comm| {
            let body = body.clone();
            let rank = comm.rank();
            std::thread::Builder::new()
                .name(format!("axonn-rank-{rank}"))
                .spawn(move || {
                    let death_handle = comm.clone();
                    match std::panic::catch_unwind(AssertUnwindSafe(|| body(comm))) {
                        Ok(v) => Ok(v),
                        Err(e) => {
                            let record = classify_panic(rank, &*e);
                            // Mark (don't poison): peers blocked on this
                            // rank get a typed PeerLost and cascade out;
                            // survivor-to-survivor traffic still works.
                            death_handle.mark_dead(rank, &record.message);
                            Err(record)
                        }
                    }
                })
                .expect("failed to spawn rank thread")
        })
        .collect();
    let mut results = Vec::new();
    let mut failures = Vec::new();
    for h in handles {
        match h.join().expect("rank thread itself cannot panic") {
            Ok(v) => results.push(v),
            Err(record) => failures.push(record),
        }
    }
    if failures.is_empty() {
        return Ok(results);
    }
    let origin = failures
        .iter()
        .find(|f| f.kind != FailureKind::PeerLost)
        .unwrap_or(&failures[0])
        .clone();
    Err(WorldFailure { origin, failures })
}

/// The supervisor's recovery-event recorder: a per-run trace sink on its
/// own monotone wall-clock timeline. The supervisor records lifecycle
/// transitions through it automatically; checkpoint-aware policies add
/// their own ("checkpoint", "resume", "reshard"). Cloning shares the
/// sink and timeline, so policies can hand clones to rank bodies.
#[derive(Clone)]
pub struct RecoveryLog {
    sink: Arc<TraceSink>,
    t0: Instant,
}

impl RecoveryLog {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        RecoveryLog {
            sink: TraceSink::new(0),
            t0: Instant::now(),
        }
    }

    /// Record a recovery lifecycle event (instant marker at the current
    /// wall time, in seconds since the log was created).
    pub fn event(&self, event: &'static str, attempt: u64, step: u64, rank: usize) {
        let t = self.t0.elapsed().as_secs_f64();
        self.sink.mark(
            Stream::Compute,
            t,
            EventDetail::Recovery {
                event,
                attempt,
                step,
                rank,
            },
        );
    }

    /// Snapshot the recorded events as a rank trace (rank 0 = the
    /// supervisor itself), suitable for Chrome-trace export.
    pub fn finish(&self) -> RankTrace {
        self.sink.finish()
    }
}

/// One attempt of a supervised run, produced by the recovery policy.
pub struct AttemptSpec<T> {
    /// Ranks to launch (may shrink across attempts for elastic resume).
    pub world_size: usize,
    /// Fault injection for this attempt (kills already fired are the
    /// policy's responsibility to retire).
    pub faults: FaultConfig,
    /// The per-rank body. `Arc<dyn Fn>` so different attempts can carry
    /// different closures (e.g. "resume from step 4" vs "start fresh").
    pub body: Arc<dyn Fn(Comm) -> T + Send + Sync>,
}

/// Outcome of [`run_spmd_supervised`].
pub struct SupervisedRun<T> {
    /// Per-rank results of the successful attempt, or `None` if the
    /// policy gave up.
    pub results: Option<Vec<T>>,
    /// Number of worlds launched (≥ 1 unless the policy refused even
    /// the first attempt).
    pub attempts: u64,
    /// Every failed attempt's failure, in order.
    pub failures: Vec<WorldFailure>,
}

/// Run SPMD worlds under a recovery policy until one completes or the
/// policy gives up.
///
/// The policy is called before every attempt with the attempt index and
/// the previous failure (`None` on the first attempt); it returns the
/// next [`AttemptSpec`], or `None` to stop. The supervisor records
/// `restart` / `failure_detected` / `completed` / `give_up` events into
/// `log`; policies record their own checkpoint/resume/reshard events.
pub fn run_spmd_supervised<T>(
    log: &RecoveryLog,
    mut policy: impl FnMut(u64, Option<&WorldFailure>) -> Option<AttemptSpec<T>>,
) -> SupervisedRun<T>
where
    T: Send + 'static,
{
    let mut attempt: u64 = 0;
    let mut last_failure: Option<WorldFailure> = None;
    let mut failures = Vec::new();
    loop {
        let Some(spec) = policy(attempt, last_failure.as_ref()) else {
            let (step, rank) = last_failure
                .as_ref()
                .map(|f| (f.origin.step.unwrap_or(0), f.origin.rank))
                .unwrap_or((0, 0));
            log.event("give_up", attempt, step, rank);
            return SupervisedRun {
                results: None,
                attempts: attempt,
                failures,
            };
        };
        if attempt > 0 {
            log.event("restart", attempt, 0, 0);
        }
        match launch_fallible(
            CommWorld::create_faulty(spec.world_size, spec.faults),
            spec.body,
        ) {
            Ok(results) => {
                log.event("completed", attempt, 0, 0);
                return SupervisedRun {
                    results: Some(results),
                    attempts: attempt + 1,
                    failures,
                };
            }
            Err(failure) => {
                log.event(
                    "failure_detected",
                    attempt,
                    failure.origin.step.unwrap_or(0),
                    failure.origin.rank,
                );
                last_failure = Some(failure.clone());
                failures.push(failure);
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axonn_collectives::{DropRule, ProcessGroup};
    use std::time::Duration;

    #[test]
    fn fallible_run_returns_results_when_healthy() {
        let out = run_spmd_fallible(4, FaultConfig::none(), |c| c.rank() * 2).unwrap();
        assert_eq!(out, vec![0, 2, 4, 6]);
    }

    #[test]
    fn injected_kill_is_the_origin_and_peers_cascade_out() {
        let err = run_spmd_fallible(4, FaultConfig::none(), |c| {
            if c.rank() == 2 {
                std::panic::panic_any(InjectedKill { rank: 2, step: 7 });
            }
            let g = ProcessGroup::new((0..4).collect());
            let mut v = vec![c.rank() as f32];
            c.all_reduce(&g, &mut v);
            v[0]
        })
        .unwrap_err();
        assert_eq!(err.origin.rank, 2);
        assert_eq!(err.origin.kind, FailureKind::Killed);
        assert_eq!(err.origin.step, Some(7));
        // Every other rank went down as a secondary PeerLost, not a hang.
        assert_eq!(err.failures.len(), 4);
        for f in err.failures.iter().filter(|f| f.rank != 2) {
            assert_eq!(
                f.kind,
                FailureKind::PeerLost,
                "rank {}: {}",
                f.rank,
                f.message
            );
        }
    }

    #[test]
    fn dropped_message_surfaces_as_peer_lost_via_timeout() {
        // Rank 0's first message to rank 1 is lost; with a short recv
        // timeout rank 1 reports PeerLost instead of hanging forever.
        let faults = FaultConfig::none()
            .with_drop(DropRule {
                src: 0,
                dst: 1,
                nth: 1,
            })
            .with_recv_timeout(Duration::from_millis(100));
        let err = run_spmd_fallible(2, faults, |c| {
            if c.rank() == 0 {
                c.send(1, 42, vec![1.0]);
                c.recv(1, 43)
            } else {
                let got = c.recv(0, 42); // the dropped message
                c.send(0, 43, vec![2.0]);
                got
            }
        })
        .unwrap_err();
        let r1 = err.failures.iter().find(|f| f.rank == 1).unwrap();
        assert_eq!(r1.kind, FailureKind::PeerLost);
        assert!(r1.message.contains("timed out"), "{}", r1.message);
    }

    #[test]
    fn genuine_panic_is_classified_as_panic() {
        let err = run_spmd_fallible(2, FaultConfig::none(), |c| {
            if c.rank() == 1 {
                panic!("real bug");
            }
            let g = ProcessGroup::new(vec![0, 1]);
            c.barrier(&g);
        })
        .unwrap_err();
        assert_eq!(err.origin.rank, 1);
        assert_eq!(err.origin.kind, FailureKind::Panic);
        assert_eq!(err.origin.message, "real bug");
    }

    #[test]
    fn supervisor_relaunches_until_success_and_logs_lifecycle() {
        let log = RecoveryLog::new();
        let run = run_spmd_supervised(&log, |attempt, failure| {
            if attempt > 0 {
                assert_eq!(failure.unwrap().origin.kind, FailureKind::Killed);
            }
            let fail_this_attempt = attempt < 2;
            Some(AttemptSpec {
                world_size: 2,
                faults: FaultConfig::none(),
                body: Arc::new(move |c: Comm| {
                    if fail_this_attempt && c.rank() == 1 {
                        std::panic::panic_any(InjectedKill { rank: 1, step: 3 });
                    }
                    let g = ProcessGroup::new(vec![0, 1]);
                    let mut v = vec![1.0f32];
                    c.all_reduce(&g, &mut v);
                    v[0]
                }),
            })
        });
        assert_eq!(run.results.unwrap(), vec![2.0, 2.0]);
        assert_eq!(run.attempts, 3);
        assert_eq!(run.failures.len(), 2);
        let kinds = log.finish().kind_signature();
        assert_eq!(
            kinds,
            vec![
                "recovery:failure_detected".to_string(),
                "recovery:restart".to_string(),
                "recovery:failure_detected".to_string(),
                "recovery:restart".to_string(),
                "recovery:completed".to_string(),
            ]
        );
    }

    #[test]
    fn supervisor_gives_up_when_policy_declines() {
        let log = RecoveryLog::new();
        let run: SupervisedRun<()> = run_spmd_supervised(&log, |attempt, _| {
            if attempt >= 1 {
                return None;
            }
            Some(AttemptSpec {
                world_size: 2,
                faults: FaultConfig::none(),
                body: Arc::new(|c: Comm| {
                    if c.rank() == 0 {
                        std::panic::panic_any(InjectedKill { rank: 0, step: 1 });
                    }
                }),
            })
        });
        assert!(run.results.is_none());
        assert_eq!(run.attempts, 1);
        assert_eq!(run.failures.len(), 1);
        let kinds = log.finish().kind_signature();
        assert_eq!(
            kinds,
            vec![
                "recovery:failure_detected".to_string(),
                "recovery:give_up".to_string(),
            ]
        );
    }

    #[test]
    fn recovery_log_timeline_is_monotone() {
        let log = RecoveryLog::new();
        log.event("failure_detected", 0, 3, 1);
        log.event("restart", 1, 3, 0);
        log.event("completed", 1, 0, 0);
        assert!(log.finish().streams_monotone());
    }
}
