//! Threaded SPMD runtime for the correctness plane.
//!
//! The original AxoNN launches one process per GPU under MPI/torchrun;
//! here a *rank* is an OS thread holding a [`Comm`]. [`run_spmd`] spawns
//! the world, runs the same closure on every rank (Single Program,
//! Multiple Data) and collects the per-rank results in rank order.
//! Panics on any rank are propagated with the rank attached, so test
//! failures point at the offending rank instead of deadlocking the world.

use axonn_collectives::{Comm, CommWorld, CostModel};
use std::sync::Arc;

/// Run `body` on `world_size` ranks with no virtual-time tracking.
/// Returns the per-rank results in rank order.
pub fn run_spmd<F, T>(world_size: usize, body: F) -> Vec<T>
where
    F: Fn(Comm) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    launch(CommWorld::create(world_size), body)
}

/// Run `body` on `world_size` ranks with virtual clocks advanced by
/// `cost`. Returns the per-rank results in rank order.
pub fn run_spmd_timed<F, T>(world_size: usize, cost: Arc<dyn CostModel>, body: F) -> Vec<T>
where
    F: Fn(Comm) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    launch(CommWorld::create_timed(world_size, cost), body)
}

fn launch<F, T>(comms: Vec<Comm>, body: F) -> Vec<T>
where
    F: Fn(Comm) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    let body = Arc::new(body);
    let handles: Vec<_> = comms
        .into_iter()
        .map(|comm| {
            let body = body.clone();
            let rank = comm.rank();
            std::thread::Builder::new()
                .name(format!("axonn-rank-{rank}"))
                .spawn(move || body(comm))
                .expect("failed to spawn rank thread")
        })
        .collect();
    handles
        .into_iter()
        .enumerate()
        .map(|(rank, h)| match h.join() {
            Ok(v) => v,
            Err(e) => {
                let msg = e
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| e.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic payload>");
                panic!("rank {rank} panicked: {msg}");
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use axonn_collectives::ProcessGroup;

    #[test]
    fn results_in_rank_order() {
        let out = run_spmd(6, |c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn world_wide_all_reduce() {
        let out = run_spmd(8, |c| {
            let g = ProcessGroup::new((0..8).collect());
            let mut v = vec![c.rank() as f32];
            c.all_reduce(&g, &mut v);
            v[0]
        });
        assert!(out.iter().all(|&x| x == 28.0));
    }

    #[test]
    fn subgroup_collectives_do_not_interfere() {
        let out = run_spmd(8, |c| {
            // Two disjoint groups of 4 reduce independently.
            let mine: Vec<usize> = if c.rank() < 4 {
                (0..4).collect()
            } else {
                (4..8).collect()
            };
            let g = ProcessGroup::new(mine);
            let mut v = vec![c.rank() as f32];
            c.all_reduce(&g, &mut v);
            v[0]
        });
        assert_eq!(out[..4], [6.0, 6.0, 6.0, 6.0]);
        assert_eq!(out[4..], [22.0, 22.0, 22.0, 22.0]);
    }

    #[test]
    #[should_panic(expected = "rank 3 panicked: boom")]
    fn rank_panic_is_attributed() {
        run_spmd(4, |c| {
            if c.rank() == 3 {
                panic!("boom");
            }
        });
    }
}
