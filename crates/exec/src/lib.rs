//! Threaded SPMD runtime for the correctness plane.
//!
//! The original AxoNN launches one process per GPU under MPI/torchrun;
//! here a *rank* is an OS thread holding a [`Comm`]. [`run_spmd`] spawns
//! the world, runs the same closure on every rank (Single Program,
//! Multiple Data) and collects the per-rank results in rank order.
//!
//! A panicking rank **poisons the world** before unwinding: every peer
//! blocked in (or later entering) a collective panics instead of waiting
//! forever for a message that will never come, and the launcher reports
//! the *original* panicking rank rather than the first casualty. Without
//! this, a panic on rank `k` while other ranks sit in a ring collective
//! would deadlock the join loop.

pub mod supervise;
pub mod watchdog;

pub use supervise::{
    run_spmd_fallible, run_spmd_supervised, AttemptSpec, RecoveryLog, SupervisedRun, WorldFailure,
};
pub use watchdog::{
    watchdog_threshold, StallReport, Watchdog, WatchdogConfig, DEFAULT_WATCHDOG_MS,
};

use axonn_collectives::{Comm, CommWorld, CostModel};
use axonn_trace::RankTrace;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

/// Run `body` on `world_size` ranks with no virtual-time tracking.
/// Returns the per-rank results in rank order.
pub fn run_spmd<F, T>(world_size: usize, body: F) -> Vec<T>
where
    F: Fn(Comm) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    launch(CommWorld::create(world_size), body)
}

/// Run `body` on `world_size` ranks with virtual clocks advanced by
/// `cost`. Returns the per-rank results in rank order.
pub fn run_spmd_timed<F, T>(world_size: usize, cost: Arc<dyn CostModel>, body: F) -> Vec<T>
where
    F: Fn(Comm) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    launch(CommWorld::create_timed(world_size, cost), body)
}

/// Run `body` on a pre-built world — the escape hatch for callers that
/// configure the world through [`CommWorld::builder`] (cost model, fault
/// plan, live-metrics registry) and still want the launcher's poisoning,
/// flight-dump and schedule-certification behaviour. `comms` must be the
/// complete rank set of one world, in rank order.
pub fn run_spmd_on<F, T>(comms: Vec<Comm>, body: F) -> Vec<T>
where
    F: Fn(Comm) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    assert!(!comms.is_empty(), "empty world");
    launch(comms, body)
}

/// Results and traces of a traced SPMD run, both in rank order.
pub struct TracedRun<T> {
    pub results: Vec<T>,
    pub traces: Vec<RankTrace>,
}

/// Run `body` on `world_size` ranks with virtual clocks advanced by
/// `cost` and every rank recording trace events (collectives are
/// instrumented automatically; `body` can add compute spans through
/// `Comm::tracer`). Returns the per-rank results and finished traces.
pub fn run_spmd_traced<F, T>(world_size: usize, cost: Arc<dyn CostModel>, body: F) -> TracedRun<T>
where
    F: Fn(Comm) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    let (comms, sinks) = CommWorld::create_traced(world_size, cost);
    let results = launch(comms, body);
    let traces = sinks.iter().map(|s| s.finish()).collect();
    TracedRun { results, traces }
}

/// One-time rayon pool sizing from `AXONN_THREADS`. Kernel parallelism
/// (the blocked GEMM's panel bands, the SIMD reduce folds) inherits the
/// global pool, so pinning it at world startup makes every rank's
/// compute deterministic in thread count — which is what the CI perf
/// gate sets (`AXONN_THREADS=1`) to keep gate medians comparable across
/// differently-sized runners. Unset or `0` keeps the auto size.
fn init_thread_pool() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| {
        let Some(n) = std::env::var("AXONN_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|n| *n > 0)
        else {
            return;
        };
        if let Err(e) = rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
        {
            eprintln!("[axonn-exec] AXONN_THREADS={n} ignored: {e}");
        }
    });
}

fn launch<F, T>(comms: Vec<Comm>, body: F) -> Vec<T>
where
    F: Fn(Comm) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    init_thread_pool();
    let body = Arc::new(body);
    // A probe clone lets the join loop read the poison flag after the
    // rank threads are gone.
    let probe = comms[0].clone();
    let handles: Vec<_> = comms
        .into_iter()
        .map(|comm| {
            let body = body.clone();
            let rank = comm.rank();
            std::thread::Builder::new()
                .name(format!("axonn-rank-{rank}"))
                .spawn(move || {
                    let poison_handle = comm.clone();
                    match std::panic::catch_unwind(AssertUnwindSafe(|| body(comm))) {
                        Ok(v) => v,
                        Err(e) => {
                            // Poison before unwinding so blocked peers
                            // abort instead of deadlocking; secondary
                            // (poison-induced) panics don't overwrite the
                            // original because the first poisoner wins.
                            if !is_poison_panic(&*e) {
                                poison_handle.poison_world(rank, panic_message(&*e));
                            }
                            std::panic::resume_unwind(e);
                        }
                    }
                })
                .expect("failed to spawn rank thread")
        })
        .collect();
    let mut failed = false;
    let results: Vec<Option<T>> = handles
        .into_iter()
        .map(|h| match h.join() {
            Ok(v) => Some(v),
            Err(_) => {
                failed = true;
                None
            }
        })
        .collect();
    if failed {
        match probe.poison_info() {
            Some(info) => {
                // Crash post-mortem: persist every rank's flight
                // recorder before re-raising (the post-hoc tracer never
                // finishes on failed runs, so this is the only data).
                probe.dump_flight_all(&format!(
                    "world poisoned: rank {} panicked: {}",
                    info.origin_rank, info.message
                ));
                panic!("rank {} panicked: {}", info.origin_rank, info.message)
            }
            None => {
                let rank = results.iter().position(Option::is_none).unwrap_or(0);
                probe.dump_flight_all(&format!("rank {rank} panicked: <unknown failure>"));
                panic!("rank {rank} panicked: <unknown failure>");
            }
        }
    }
    // Post-run schedule certification: when recording was on (dry worlds,
    // debug builds, or AXONN_SCHED_VERIFY=1) and all ranks completed
    // cleanly, cross-check the recorded collective streams — cross-rank
    // matching plus the happens-before race and slab-lifetime analyses.
    // Completion already witnesses deadlock freedom, so the deadlock and
    // leak checks stay off. Every world launched here flows through this
    // gate, training and serve alike (`axonn_serve::tp_greedy_spmd` lands
    // on `run_spmd_on`).
    if let Some(streams) = probe.schedule_streams() {
        if probe.schedule_clean() {
            let report = axonn_verify::check_runtime(&streams);
            assert!(
                report.is_ok(),
                "collective schedule verification failed:\n{report}"
            );
        }
    }
    results
        .into_iter()
        .map(|v| v.expect("checked above"))
        .collect()
}

/// True when a panic payload is a secondary, poison-induced abort rather
/// than an original failure.
fn is_poison_panic(e: &(dyn std::any::Any + Send)) -> bool {
    e.downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| e.downcast_ref::<&str>().copied())
        .is_some_and(|m| m.starts_with("world poisoned:"))
}

fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    e.downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| e.downcast_ref::<&str>().copied())
        .unwrap_or("<non-string panic payload>")
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use axonn_collectives::ProcessGroup;

    #[test]
    fn results_in_rank_order() {
        let out = run_spmd(6, |c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn world_wide_all_reduce() {
        let out = run_spmd(8, |c| {
            let g = ProcessGroup::new((0..8).collect());
            let mut v = vec![c.rank() as f32];
            c.all_reduce(&g, &mut v);
            v[0]
        });
        assert!(out.iter().all(|&x| x == 28.0));
    }

    #[test]
    fn subgroup_collectives_do_not_interfere() {
        let out = run_spmd(8, |c| {
            // Two disjoint groups of 4 reduce independently.
            let mine: Vec<usize> = if c.rank() < 4 {
                (0..4).collect()
            } else {
                (4..8).collect()
            };
            let g = ProcessGroup::new(mine);
            let mut v = vec![c.rank() as f32];
            c.all_reduce(&g, &mut v);
            v[0]
        });
        assert_eq!(out[..4], [6.0, 6.0, 6.0, 6.0]);
        assert_eq!(out[4..], [22.0, 22.0, 22.0, 22.0]);
    }

    #[test]
    #[should_panic(expected = "rank 3 panicked: boom")]
    fn rank_panic_is_attributed() {
        run_spmd(4, |c| {
            if c.rank() == 3 {
                panic!("boom");
            }
        });
    }

    #[test]
    #[should_panic(expected = "rank 1 panicked: deliberate failure")]
    fn rank_panic_does_not_deadlock_peers_blocked_in_collective() {
        // Every rank except 1 enters a world-wide all-reduce and blocks
        // on messages from rank 1, which panics instead of joining the
        // collective. Before world poisoning this deadlocked the join
        // loop (rank 0 never returned); now the poison wakes the blocked
        // ranks and the original panic is attributed to rank 1.
        run_spmd(4, |c| {
            if c.rank() == 1 {
                panic!("deliberate failure");
            }
            let g = ProcessGroup::new((0..4).collect());
            let mut v = vec![c.rank() as f32];
            c.all_reduce(&g, &mut v);
            v[0]
        });
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked: async failure")]
    fn rank_panic_does_not_deadlock_async_waiters() {
        // Peers block in `AsyncHandle::wait` on a collective rank 2
        // never issues; poisoning must reach them through their
        // communication workers.
        run_spmd(4, |c| {
            if c.rank() == 2 {
                panic!("async failure");
            }
            let g = ProcessGroup::new((0..4).collect());
            let h = c.iall_reduce(&g, vec![c.rank() as f32]);
            h.wait()
        });
    }

    #[test]
    fn traced_run_records_collectives_per_rank() {
        use axonn_collectives::RingCostModel;
        let run = run_spmd_traced(4, Arc::new(RingCostModel::new(1e9, 1e9)), |c| {
            let g = ProcessGroup::new((0..4).collect());
            let mut v = vec![c.rank() as f32; 1000];
            c.all_reduce(&g, &mut v);
            let h = c.iall_gather(&g, vec![c.rank() as f32]);
            h.wait().len()
        });
        assert_eq!(run.results, vec![4, 4, 4, 4]);
        assert_eq!(run.traces.len(), 4);
        for (rank, trace) in run.traces.iter().enumerate() {
            assert_eq!(trace.rank, rank);
            let sig = trace.kind_signature();
            assert_eq!(
                sig,
                vec![
                    // Both payloads are small enough that the default
                    // policy selects the tree all-reduce and the
                    // recursive-doubling all-gather.
                    "collective:all_reduce_tree".to_string(),
                    "issue:all_gather_rd".to_string(),
                    "wait:all_gather_rd".to_string(),
                ],
                "rank {rank} signature"
            );
            // The async execution span landed on the comm stream.
            assert_eq!(
                trace
                    .stream_events(axonn_trace::Stream::Comm)
                    .map(|e| e.detail.kind())
                    .collect::<Vec<_>>(),
                vec!["async:all_gather_rd".to_string()]
            );
            assert!(trace.streams_monotone(), "rank {rank} timestamps");
        }
    }
}
