//! GPT-style transformer model zoo and FLOP accounting.
//!
//! Reproduces Table II of the paper (the 5B–640B GPT architectures used in
//! every performance experiment) and Narayanan et al.'s analytical FLOP
//! formulation, which the paper uses to compute "model flops" for all
//! reported flop/s numbers (Section VI-C). Also exposes the per-layer
//! fully-connected matrix shapes that the 4D algorithm, the performance
//! model (Equations 1–6) and the simulator all consume.

use serde::{Deserialize, Serialize};

/// Default sequence length for all performance experiments.
pub const DEFAULT_SEQ_LEN: usize = 2048;
/// GPT-2/3 style vocabulary size (51,200 = 50,257 padded to a multiple of
/// 1024 as in Megatron-LM).
pub const DEFAULT_VOCAB: usize = 51_200;
/// The global batch size used for the headline runs: 16.8M tokens
/// (Table I), i.e. 8192 sequences of 2048 tokens.
pub const HEADLINE_BATCH_TOKENS: usize = 16_777_216;

/// Architecture of one GPT-style transformer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GptConfig {
    pub name: String,
    pub num_layers: usize,
    pub hidden_size: usize,
    pub num_heads: usize,
    pub seq_len: usize,
    pub vocab_size: usize,
}

impl GptConfig {
    pub fn new(name: &str, num_layers: usize, hidden_size: usize, num_heads: usize) -> Self {
        assert_eq!(
            hidden_size % num_heads,
            0,
            "hidden size must divide evenly into heads"
        );
        GptConfig {
            name: name.to_string(),
            num_layers,
            hidden_size,
            num_heads,
            seq_len: DEFAULT_SEQ_LEN,
            vocab_size: DEFAULT_VOCAB,
        }
    }

    /// Total trainable parameters: `12·l·h²·(1 + 13/(12h)) + (V + s)·h`
    /// (attention + MLP + layernorms/biases + embeddings), the standard
    /// GPT counting used alongside Narayanan's FLOP formula.
    pub fn num_parameters(&self) -> u64 {
        let l = self.num_layers as u64;
        let h = self.hidden_size as u64;
        let v = self.vocab_size as u64;
        let s = self.seq_len as u64;
        12 * l * h * h + 13 * l * h + (v + s) * h
    }

    /// "Model flops" per training iteration for `batch_tokens` tokens:
    /// Narayanan et al.'s formula *without* activation recomputation,
    /// `72·B·s·l·h²·(1 + s/(6h) + V/(12·l·h))` — this is the numerator of
    /// every flop/s figure the paper reports.
    pub fn model_flops_per_iter(&self, batch_tokens: usize) -> f64 {
        self.flops_per_iter(batch_tokens, false)
    }

    /// Hardware flops per iteration *with* activation checkpointing
    /// (which the paper enables for all runs): the forward pass is
    /// recomputed during the backward pass, giving
    /// `96·B·s·l·h²·(1 + s/(6h) + V/(16·l·h))`.
    pub fn hardware_flops_per_iter(&self, batch_tokens: usize) -> f64 {
        self.flops_per_iter(batch_tokens, true)
    }

    fn flops_per_iter(&self, batch_tokens: usize, with_recompute: bool) -> f64 {
        let bs = batch_tokens as f64; // B·s
        let l = self.num_layers as f64;
        let h = self.hidden_size as f64;
        let s = self.seq_len as f64;
        let v = self.vocab_size as f64;
        let (factor, vocab_div) = if with_recompute {
            (96.0, 16.0)
        } else {
            (72.0, 12.0)
        };
        factor * bs * l * h * h * (1.0 + s / (6.0 * h) + v / (vocab_div * l * h))
    }

    /// Approximate model flops per token (the `6·N` rule): useful for
    /// time-to-solution estimates over trillion-token corpora (Fig. 9).
    pub fn model_flops_per_token(&self) -> f64 {
        self.model_flops_per_iter(1_000_000) / 1.0e6
    }

    /// The fully-connected layers of one transformer block, in execution
    /// order. These are the matrices Algorithm 1 parallelizes and the
    /// quantities `m`, `k`, `n` in Equations 1–5: an FC layer multiplies
    /// an `m×k` activation by a `k×n` weight.
    pub fn block_fc_layers(&self) -> Vec<FcShape> {
        let h = self.hidden_size;
        vec![
            FcShape::new("attn_qkv", h, 3 * h),
            FcShape::new("attn_proj", h, h),
            FcShape::new("mlp_up", h, 4 * h),
            FcShape::new("mlp_down", 4 * h, h),
        ]
    }

    /// All FC layers of the full network (blocks repeated `num_layers`
    /// times), each tagged with the alternating "transposed" flag of the
    /// paper's multi-layer scheme (Section V-A): every other FC swaps the
    /// roles of the X and Y tensor-parallel groups.
    pub fn network_fc_layers(&self) -> Vec<FcLayer> {
        let mut out = Vec::with_capacity(self.num_layers * 4);
        let mut idx = 0usize;
        for _ in 0..self.num_layers {
            for shape in self.block_fc_layers() {
                out.push(FcLayer {
                    shape,
                    transposed: idx % 2 == 1,
                });
                idx += 1;
            }
        }
        out
    }
}

/// Shape of one fully-connected layer's weight: `k × n` (input features ×
/// output features).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FcShape {
    pub name: &'static str,
    pub k: usize,
    pub n: usize,
}

impl FcShape {
    pub fn new(name: &'static str, k: usize, n: usize) -> Self {
        FcShape { name, k, n }
    }

    /// Weight elements.
    pub fn weight_elems(&self) -> usize {
        self.k * self.n
    }

    /// GEMM flops for the forward pass with `m` activation rows:
    /// `2·m·k·n`, and three such products per training step (fwd + two in
    /// bwd).
    pub fn forward_flops(&self, m: usize) -> f64 {
        2.0 * m as f64 * self.k as f64 * self.n as f64
    }
}

/// One FC layer instance within the network, with the paper's alternating
/// transpose flag.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FcLayer {
    pub shape: FcShape,
    pub transposed: bool,
}

/// Table II of the paper: the GPT architectures used in the performance
/// experiments.
pub fn table2_models() -> Vec<GptConfig> {
    vec![
        GptConfig::new("GPT-5B", 24, 4096, 32),
        GptConfig::new("GPT-10B", 32, 5120, 40),
        GptConfig::new("GPT-20B", 32, 7168, 56),
        GptConfig::new("GPT-40B", 38, 9216, 72),
        GptConfig::new("GPT-60B", 56, 9216, 72),
        GptConfig::new("GPT-80B", 42, 12288, 96),
        GptConfig::new("GPT-160B", 84, 12288, 96),
        GptConfig::new("GPT-320B", 96, 16384, 128),
        GptConfig::new("GPT-640B", 192, 16384, 128),
    ]
}

/// Look up a Table II model by its headline size, e.g. `20` for GPT-20B.
pub fn model_by_billions(billions: usize) -> GptConfig {
    table2_models()
        .into_iter()
        .find(|m| m.name == format!("GPT-{billions}B"))
        .unwrap_or_else(|| panic!("no GPT-{billions}B in Table II"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_nine_models() {
        let models = table2_models();
        assert_eq!(models.len(), 9);
        assert_eq!(models[0].name, "GPT-5B");
        assert_eq!(models[8].name, "GPT-640B");
    }

    #[test]
    fn parameter_counts_match_headline_sizes() {
        // Each model's parameter count should be within 20% of its
        // nominal size (the paper's names round generously).
        for m in table2_models() {
            let nominal: f64 = m
                .name
                .trim_start_matches("GPT-")
                .trim_end_matches('B')
                .parse::<f64>()
                .unwrap()
                * 1e9;
            let actual = m.num_parameters() as f64;
            let ratio = actual / nominal;
            assert!(
                (0.8..=1.25).contains(&ratio),
                "{}: {actual:.3e} vs nominal {nominal:.3e} (ratio {ratio:.2})",
                m.name
            );
        }
    }

    #[test]
    fn gpt20b_parameters_near_19_7b() {
        let m = model_by_billions(20);
        let p = m.num_parameters() as f64;
        assert!((1.95e10..2.05e10).contains(&p), "got {p:.3e}");
    }

    #[test]
    fn hardware_flops_exceed_model_flops_by_recompute_factor() {
        let m = model_by_billions(40);
        let mf = m.model_flops_per_iter(HEADLINE_BATCH_TOKENS);
        let hf = m.hardware_flops_per_iter(HEADLINE_BATCH_TOKENS);
        let ratio = hf / mf;
        // 96/72 = 4/3, slightly modified by the vocab term.
        assert!((1.30..1.34).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn model_flops_consistent_with_6n_rule() {
        // model flops per token ≈ 6·N for large models (attention and
        // vocab corrections push it slightly above).
        for m in table2_models() {
            let per_token = m.model_flops_per_token();
            let six_n = 6.0 * m.num_parameters() as f64;
            let ratio = per_token / six_n;
            assert!(
                (0.95..1.35).contains(&ratio),
                "{}: per-token {per_token:.3e} vs 6N {six_n:.3e} (ratio {ratio:.2})",
                m.name
            );
        }
    }

    #[test]
    fn perlmutter_headline_sanity() {
        // Paper Table III: GPT-40B on 4096 A100s sustains 620.1 Pflop/s
        // = 48.5% of peak. Model flops per iteration / 620.1 Pflop/s
        // should therefore equal the iteration time; just check the FLOP
        // count magnitude is sensible (~10^19 per 16.8M-token batch).
        let m = model_by_billions(40);
        let f = m.model_flops_per_iter(HEADLINE_BATCH_TOKENS);
        assert!((1e18..1e20).contains(&f), "got {f:.3e}");
    }

    #[test]
    fn fc_layers_shapes_and_transpose_alternation() {
        let m = model_by_billions(5);
        let h = m.hidden_size;
        let layers = m.network_fc_layers();
        assert_eq!(layers.len(), m.num_layers * 4);
        assert_eq!(layers[0].shape, FcShape::new("attn_qkv", h, 3 * h));
        assert_eq!(layers[3].shape, FcShape::new("mlp_down", 4 * h, h));
        for (i, l) in layers.iter().enumerate() {
            assert_eq!(l.transposed, i % 2 == 1, "layer {i}");
        }
    }

    #[test]
    fn block_flops_close_to_formula_core() {
        // Sum of FC flops over the network ≈ the 72·B·s·l·h² core (the
        // formula adds attention-score and vocab terms).
        let m = model_by_billions(10);
        let tokens = 4096usize;
        let fc_total: f64 = m
            .network_fc_layers()
            .iter()
            .map(|l| 3.0 * l.shape.forward_flops(tokens))
            .sum();
        let core = 72.0 * tokens as f64 * m.num_layers as f64 * (m.hidden_size as f64).powi(2);
        let ratio = fc_total / core;
        assert!((0.95..1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "no GPT-7B")]
    fn unknown_model_panics() {
        let _ = model_by_billions(7);
    }
}
