//! `axonnctl` — command-line front end to the AxoNN-rs reproduction.
//!
//! ```text
//! axonnctl machines                          list machine models
//! axonnctl models                            list the Table II GPT zoo
//! axonnctl plan <machine> <model-B> <gpus>   rank 4D configurations
//! axonnctl simulate <machine> <model-B> <gx> <gy> <gz> <gd> [batch-tokens]
//! axonnctl profile <machine>                 print the bandwidth database
//! ```

use axonn_cli::{run, Command};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match Command::parse(&args) {
        Ok(cmd) => {
            if let Err(e) = run(cmd) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", axonn_cli::USAGE);
            std::process::exit(2);
        }
    }
}
