//! Library backing `axonnctl`: argument parsing and subcommand
//! execution, kept in a library so the logic is unit-testable.

use std::sync::Arc;

use axonn_bench::step::{compare as bench_compare, load_report, run_step_bench, StepBenchConfig};
use axonn_cluster::{BandwidthDb, Machine};
use axonn_collectives::{Comm, CommWorld, CostModel, ProcessGroup, RingCostModel};
use axonn_core::{
    default_mlp_shape, default_transformer_shape, extract_mlp_schedules,
    extract_transformer_schedules, transformer_grid_fits, GridTopology, OverlapConfig,
    TransformerStack,
};
use axonn_exec::run_spmd_traced;
use axonn_ft::{grid_fits, legal_resume_grids, CheckpointStore};
use axonn_gpt::{table2_models, GptConfig, HEADLINE_BATCH_TOKENS};
use axonn_lm::{Gpt, GptModelConfig};
use axonn_perfmodel::{rank_configs, Grid4d};
use axonn_serve::{
    run_load, tp_greedy_spmd, DecodeSession, LoadConfig, Sampling, ServeConfig, ServeEngine,
    ServeRequest,
};
use axonn_sim::{
    pick_best_config, publish_live_metrics, simulate_batch, simulate_batch_traced, SimOptions,
};
use axonn_trace::{
    chrome_trace_json, LiveRegistry, MetricsSnapshot, OverlapReport, TraceSink, TraceSummary,
};
use axonn_verify::{check_schedules, inject, DefectKind};

/// Usage text shown on parse errors.
pub const USAGE: &str = "usage:
  axonnctl machines
  axonnctl models
  axonnctl plan <machine> <model-billions> <gpus> [batch-tokens]
  axonnctl simulate <machine> <model-billions> <gx> <gy> <gz> <gd> [batch-tokens]
  axonnctl trace <machine> <model-billions> <gx> <gy> <gz> <gd> [batch-tokens] [out-prefix]
  axonnctl profile <machine>
  axonnctl resume <checkpoint-dir> [target-gpus] [step]
  axonnctl bench [baseline.json]
  axonnctl serve <checkpoint> [max-new-tokens] [--tp N] [--prompt t0,t1,...]
  axonnctl load [requests] [clients]
  axonnctl monitor [refreshes] [--sim]
  axonnctl verify <gx> <gy> <gz> <gd> [mlp|transformer] [--inject <defect>]
  axonnctl verify --all-grids <gpus> [mlp|transformer]
  axonnctl verify --serve <tp> [<layers> <tokens>] [--inject <defect>]
  (defects: reorder, missing-wait, count-mismatch, overlap-race, slab-reuse, early-recycle)";

/// A parsed subcommand.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    Machines,
    Models,
    Plan {
        machine: String,
        billions: usize,
        gpus: usize,
        batch_tokens: usize,
    },
    Simulate {
        machine: String,
        billions: usize,
        grid: Grid4d,
        batch_tokens: usize,
    },
    Trace {
        machine: String,
        billions: usize,
        grid: Grid4d,
        batch_tokens: usize,
        /// Output files are `<prefix>.trace.json` and `<prefix>.summary.json`.
        prefix: String,
    },
    Profile {
        machine: String,
    },
    /// Inspect a fault-tolerance checkpoint store and print the legal
    /// grids a resume could use on `gpus` ranks (default: the grid size
    /// that wrote the checkpoint).
    Resume {
        dir: String,
        gpus: Option<usize>,
        /// Specific step to inspect (default: the latest durable one).
        step: Option<u64>,
    },
    /// Run the wall-clock step benchmark and print the delta against a
    /// baseline file (default: the committed
    /// `results/bench_step_baseline.json`).
    Bench {
        baseline: Option<String>,
    },
    /// Decode a continuation from a trained checkpoint through the
    /// KV-cached serving path — a single `lm::Checkpoint` file or an
    /// `ft`-style sharded directory, optionally tensor-parallel over
    /// `tp` simulated ranks.
    Serve {
        checkpoint: String,
        prompt: Vec<usize>,
        max_new: usize,
        tp: usize,
    },
    /// Closed-loop load run against an in-process engine (untrained toy
    /// model): N clients with Poisson think times, continuous batching,
    /// serving-plane metrics table at the end.
    Load {
        requests: usize,
        clients: usize,
    },
    /// Live per-rank telemetry table. The default mode runs a small
    /// in-process job on the thread-backed runtime and refreshes a table
    /// of step rate, collective counts, bytes moved, heartbeat age and
    /// pending receives from the live registry + transport heartbeats.
    /// `--sim` publishes a simulated batch through the same registry —
    /// same metric names, no running job needed.
    Monitor {
        refreshes: usize,
        sim: bool,
    },
    /// Statically certify the collective schedule of one training step
    /// on a specific grid: extract per-rank streams on a dry world, then
    /// run cross-rank matching, the deadlock simulation, the leak lints,
    /// and the happens-before race + slab-lifetime analyses. `--inject`
    /// seeds a defect into rank 1's stream first and expects the
    /// verifier to reject it.
    Verify {
        grid: Grid4d,
        model: VerifyModel,
        inject: Option<DefectKind>,
    },
    /// Verify every legal grid for a GPU budget (the same enumeration
    /// elastic restart uses) and print a summary table.
    VerifyAll {
        gpus: usize,
        model: VerifyModel,
    },
    /// Certify the serving plane: extract the per-rank schedule of a
    /// `tp`-way tensor-parallel greedy decode (`layers` transformer
    /// blocks, `tokens` decode steps) and run the full checker stack
    /// over it.
    VerifyServe {
        tp: usize,
        layers: usize,
        tokens: usize,
        inject: Option<DefectKind>,
    },
}

/// Which model family `axonnctl verify` extracts a schedule from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyModel {
    Mlp,
    Transformer,
}

impl VerifyModel {
    fn parse(s: &str) -> Result<VerifyModel, String> {
        match s {
            "mlp" => Ok(VerifyModel::Mlp),
            "transformer" => Ok(VerifyModel::Transformer),
            other => Err(format!(
                "unknown model '{other}' (expected mlp or transformer)"
            )),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            VerifyModel::Mlp => "mlp",
            VerifyModel::Transformer => "transformer",
        }
    }
}

impl Command {
    /// Parse CLI arguments (without the program name).
    pub fn parse(args: &[String]) -> Result<Command, String> {
        let mut it = args.iter();
        let sub = it.next().ok_or("missing subcommand")?;
        let parse_num = |s: Option<&String>, what: &str| -> Result<usize, String> {
            s.ok_or(format!("missing {what}"))?
                .parse::<usize>()
                .map_err(|_| format!("invalid {what}: '{}'", s.unwrap()))
        };
        match sub.as_str() {
            "machines" => Ok(Command::Machines),
            "models" => Ok(Command::Models),
            "plan" => {
                let machine = it.next().ok_or("missing machine")?.clone();
                let billions = parse_num(it.next(), "model size (billions)")?;
                let gpus = parse_num(it.next(), "gpu count")?;
                let batch_tokens = match it.next() {
                    Some(s) => s
                        .parse()
                        .map_err(|_| format!("invalid batch tokens: '{s}'"))?,
                    None => HEADLINE_BATCH_TOKENS,
                };
                Ok(Command::Plan {
                    machine,
                    billions,
                    gpus,
                    batch_tokens,
                })
            }
            "simulate" => {
                let machine = it.next().ok_or("missing machine")?.clone();
                let billions = parse_num(it.next(), "model size (billions)")?;
                let gx = parse_num(it.next(), "gx")?;
                let gy = parse_num(it.next(), "gy")?;
                let gz = parse_num(it.next(), "gz")?;
                let gd = parse_num(it.next(), "gd")?;
                let batch_tokens = match it.next() {
                    Some(s) => s
                        .parse()
                        .map_err(|_| format!("invalid batch tokens: '{s}'"))?,
                    None => HEADLINE_BATCH_TOKENS,
                };
                Ok(Command::Simulate {
                    machine,
                    billions,
                    grid: Grid4d::new(gx, gy, gz, gd),
                    batch_tokens,
                })
            }
            "trace" => {
                let machine = it.next().ok_or("missing machine")?.clone();
                let billions = parse_num(it.next(), "model size (billions)")?;
                let gx = parse_num(it.next(), "gx")?;
                let gy = parse_num(it.next(), "gy")?;
                let gz = parse_num(it.next(), "gz")?;
                let gd = parse_num(it.next(), "gd")?;
                let batch_tokens = match it.next() {
                    Some(s) => s
                        .parse()
                        .map_err(|_| format!("invalid batch tokens: '{s}'"))?,
                    None => HEADLINE_BATCH_TOKENS,
                };
                let prefix = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| format!("axonn-{machine}-{billions}b"));
                Ok(Command::Trace {
                    machine,
                    billions,
                    grid: Grid4d::new(gx, gy, gz, gd),
                    batch_tokens,
                    prefix,
                })
            }
            "profile" => Ok(Command::Profile {
                machine: it.next().ok_or("missing machine")?.clone(),
            }),
            "resume" => {
                let dir = it.next().ok_or("missing checkpoint dir")?.clone();
                let gpus = match it.next() {
                    Some(s) => Some(
                        s.parse()
                            .map_err(|_| format!("invalid target gpus: '{s}'"))?,
                    ),
                    None => None,
                };
                let step = match it.next() {
                    Some(s) => Some(s.parse().map_err(|_| format!("invalid step: '{s}'"))?),
                    None => None,
                };
                Ok(Command::Resume { dir, gpus, step })
            }
            "bench" => Ok(Command::Bench {
                baseline: it.next().cloned(),
            }),
            "serve" => {
                let checkpoint = it.next().ok_or("missing checkpoint path")?.clone();
                let mut max_new = 16usize;
                let mut tp = 1usize;
                let mut prompt = vec![0usize, 1, 2];
                let mut saw_max_new = false;
                while let Some(arg) = it.next() {
                    match arg.as_str() {
                        "--tp" => {
                            let v = it.next().ok_or("missing rank count after --tp")?;
                            tp = v
                                .parse()
                                .ok()
                                .filter(|t| *t > 0)
                                .ok_or(format!("invalid tp rank count: '{v}'"))?;
                        }
                        "--prompt" => {
                            let v = it.next().ok_or("missing tokens after --prompt")?;
                            prompt = v
                                .split(',')
                                .map(|t| {
                                    t.trim()
                                        .parse::<usize>()
                                        .map_err(|_| format!("invalid prompt token: '{t}'"))
                                })
                                .collect::<Result<Vec<usize>, String>>()?;
                        }
                        other if !saw_max_new => {
                            max_new = other
                                .parse()
                                .map_err(|_| format!("invalid max new tokens: '{other}'"))?;
                            saw_max_new = true;
                        }
                        other => return Err(format!("unexpected serve argument '{other}'")),
                    }
                }
                Ok(Command::Serve {
                    checkpoint,
                    prompt,
                    max_new,
                    tp,
                })
            }
            "load" => {
                let requests = match it.next() {
                    Some(s) => s
                        .parse()
                        .map_err(|_| format!("invalid request count: '{s}'"))?,
                    None => 200,
                };
                let clients = match it.next() {
                    Some(s) => s
                        .parse()
                        .map_err(|_| format!("invalid client count: '{s}'"))?,
                    None => 8,
                };
                Ok(Command::Load { requests, clients })
            }
            "monitor" => {
                let mut refreshes = 3usize;
                let mut sim = false;
                for arg in it {
                    if arg == "--sim" {
                        sim = true;
                    } else {
                        refreshes = arg
                            .parse()
                            .map_err(|_| format!("invalid refresh count: '{arg}'"))?;
                    }
                }
                Ok(Command::Monitor { refreshes, sim })
            }
            "verify" => {
                let first = it.next().ok_or("missing grid (or --all-grids/--serve)")?;
                if first == "--all-grids" {
                    let gpus = parse_num(it.next(), "gpu count")?;
                    let model = match it.next() {
                        Some(s) => VerifyModel::parse(s)?,
                        None => VerifyModel::Mlp,
                    };
                    return Ok(Command::VerifyAll { gpus, model });
                }
                if first == "--serve" {
                    let tp = parse_num(it.next(), "tp degree")?;
                    let mut shape = Vec::new();
                    let mut inject = None;
                    while let Some(arg) = it.next() {
                        if arg == "--inject" {
                            inject = Some(parse_defect(it.next())?);
                        } else {
                            shape.push(
                                arg.parse::<usize>()
                                    .map_err(|_| format!("invalid serve shape arg: '{arg}'"))?,
                            );
                        }
                    }
                    let (layers, tokens) = match shape.as_slice() {
                        [] => (2, 3),
                        [l, t] => (*l, *t),
                        _ => return Err("--serve takes <tp> [<layers> <tokens>]".to_string()),
                    };
                    return Ok(Command::VerifyServe {
                        tp,
                        layers,
                        tokens,
                        inject,
                    });
                }
                let gx = first
                    .parse::<usize>()
                    .map_err(|_| format!("invalid gx: '{first}'"))?;
                let gy = parse_num(it.next(), "gy")?;
                let gz = parse_num(it.next(), "gz")?;
                let gd = parse_num(it.next(), "gd")?;
                let mut model = VerifyModel::Mlp;
                let mut inject = None;
                while let Some(arg) = it.next() {
                    if arg == "--inject" {
                        inject = Some(parse_defect(it.next())?);
                    } else {
                        model = VerifyModel::parse(arg)?;
                    }
                }
                Ok(Command::Verify {
                    grid: Grid4d::new(gx, gy, gz, gd),
                    model,
                    inject,
                })
            }
            other => Err(format!("unknown subcommand '{other}'")),
        }
    }
}

/// Run the full checker stack over extracted streams, optionally
/// seeding a defect into rank 1 first, and print the report plus the
/// per-check timing summary. Shared by `verify <grid>` and
/// `verify --serve`.
fn certify(
    mut streams: Vec<Vec<axonn_collectives::SchedEvent>>,
    defect: Option<DefectKind>,
) -> Result<(), String> {
    if let Some(kind) = defect {
        if streams.len() < 2 {
            return Err("--inject needs a world of at least 2 ranks".to_string());
        }
        if !inject(&mut streams, 1, kind) {
            return Err(format!(
                "could not inject '{}' into rank 1's stream",
                kind.label()
            ));
        }
        println!("injected defect '{}' into rank 1", kind.label());
    }
    let report = check_schedules(&streams);
    println!("{report}");
    println!("per-check timing: {}", timing_line(&report.timings_us));
    match defect {
        None if report.is_ok() => Ok(()),
        None => Err("schedule verification failed".to_string()),
        Some(kind) if report.is_ok() => Err(format!(
            "injected defect '{}' was not detected",
            kind.label()
        )),
        Some(kind) => {
            println!("defect '{}' correctly rejected", kind.label());
            Ok(())
        }
    }
}

/// Render `Report::timings_us` as `lints 3µs, matching 10µs, ...`.
fn timing_line(timings: &[(&'static str, u64)]) -> String {
    timings
        .iter()
        .map(|(name, us)| format!("{name} {us}µs"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Parse the argument of `--inject`, listing every known defect family
/// on error.
fn parse_defect(arg: Option<&String>) -> Result<DefectKind, String> {
    let kind = arg.ok_or("missing defect after --inject")?;
    DefectKind::parse(kind).ok_or_else(|| {
        format!(
            "unknown defect '{kind}' (expected {})",
            DefectKind::ALL.map(|k| k.label()).join(", ")
        )
    })
}

/// Look up a machine by name, with a friendly error.
fn machine(name: &str) -> Result<Machine, String> {
    match name.to_ascii_lowercase().as_str() {
        "perlmutter" | "frontier" | "alps" => Ok(Machine::by_name(name)),
        other => Err(format!(
            "unknown machine '{other}' (expected perlmutter, frontier or alps)"
        )),
    }
}

fn model(billions: usize) -> Result<GptConfig, String> {
    table2_models()
        .into_iter()
        .find(|m| m.name == format!("GPT-{billions}B"))
        .ok_or_else(|| {
            let names: Vec<String> = table2_models().iter().map(|m| m.name.clone()).collect();
            format!(
                "no GPT-{billions}B in Table II (have: {})",
                names.join(", ")
            )
        })
}

/// Execute a parsed command, printing to stdout.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Machines => {
            println!(
                "{:<12} {:>9} {:>14} {:>14} {:>12} {:>10}",
                "machine", "gpus/node", "adv Tflop/s", "emp Tflop/s", "mem/GPU", "β_inter"
            );
            for m in Machine::all() {
                println!(
                    "{:<12} {:>9} {:>14.1} {:>14.1} {:>9.0} GB {:>7.0} GB/s",
                    m.name,
                    m.gpus_per_node,
                    m.advertised_peak_tflops,
                    m.empirical_peak_tflops,
                    m.mem_per_gpu / 1e9,
                    m.beta_inter / 1e9
                );
            }
            Ok(())
        }
        Command::Models => {
            println!(
                "{:<10} {:>7} {:>8} {:>7} {:>14} {:>18}",
                "model", "layers", "hidden", "heads", "params", "model Tflop/seq"
            );
            for m in table2_models() {
                println!(
                    "{:<10} {:>7} {:>8} {:>7} {:>13.1}B {:>18.2}",
                    m.name,
                    m.num_layers,
                    m.hidden_size,
                    m.num_heads,
                    m.num_parameters() as f64 / 1e9,
                    m.model_flops_per_iter(m.seq_len) / 1e12
                );
            }
            Ok(())
        }
        Command::Plan {
            machine: mname,
            billions,
            gpus,
            batch_tokens,
        } => {
            let mach = machine(&mname)?;
            let db = BandwidthDb::profile(&mach);
            let model = model(billions)?;
            let ranked = rank_configs(
                &mach,
                &db,
                &model,
                batch_tokens,
                gpus,
                Some(mach.mem_per_gpu * 0.8),
            );
            if ranked.is_empty() {
                return Err(format!(
                    "{} does not fit on {gpus} GPUs of {}",
                    model.name, mach.name
                ));
            }
            println!(
                "{} on {gpus} GPUs of {}, batch {:.2}M tokens — top configurations:",
                model.name,
                mach.name,
                batch_tokens as f64 / 1e6
            );
            for (i, rc) in ranked.iter().take(10).enumerate() {
                println!(
                    "{:>3}. {:<24} predicted comm {:>8.3} s",
                    i + 1,
                    format!("{}", rc.grid),
                    rc.predicted_comm_seconds
                );
            }
            let (best, b) = pick_best_config(
                &mach,
                &db,
                &model,
                batch_tokens,
                gpus,
                SimOptions::full(),
                10,
            );
            let rate = model.model_flops_per_iter(batch_tokens) / b.total_seconds;
            println!(
                "\nsimulated best: {best} -> {:.2} s/iter, {:.1} Pflop/s ({:.1}% of advertised peak)",
                b.total_seconds,
                rate / 1e15,
                100.0 * rate / (gpus as f64 * mach.advertised_peak())
            );
            Ok(())
        }
        Command::Simulate {
            machine: mname,
            billions,
            grid,
            batch_tokens,
        } => {
            let mach = machine(&mname)?;
            let db = BandwidthDb::profile(&mach);
            let model = model(billions)?;
            if batch_tokens % grid.gd != 0 {
                return Err(format!(
                    "batch tokens {batch_tokens} not divisible by G_data={}",
                    grid.gd
                ));
            }
            let b = simulate_batch(&mach, &db, grid, &model, batch_tokens, SimOptions::full());
            let rate = model.model_flops_per_iter(batch_tokens) / b.total_seconds;
            println!("{} on {} — configuration {grid}:", model.name, mach.name);
            println!("  time/batch      {:>10.3} s", b.total_seconds);
            println!("  compute         {:>10.3} s", b.compute_seconds);
            println!("  exposed comm    {:>10.3} s", b.exposed_comm_seconds);
            println!("  issued comm     {:>10.3} s", b.issued_comm_seconds);
            println!(
                "  sustained       {:>10.1} Pflop/s ({:.1}% advertised / {:.1}% empirical peak)",
                rate / 1e15,
                100.0 * rate / (grid.gpus() as f64 * mach.advertised_peak()),
                100.0 * rate / (grid.gpus() as f64 * mach.empirical_peak())
            );
            Ok(())
        }
        Command::Trace {
            machine: mname,
            billions,
            grid,
            batch_tokens,
            prefix,
        } => {
            let mach = machine(&mname)?;
            let db = BandwidthDb::profile(&mach);
            let model = model(billions)?;
            if batch_tokens % grid.gd != 0 {
                return Err(format!(
                    "batch tokens {batch_tokens} not divisible by G_data={}",
                    grid.gd
                ));
            }
            let sink = TraceSink::new(0);
            let b = simulate_batch_traced(
                &mach,
                &db,
                grid,
                &model,
                batch_tokens,
                SimOptions::full(),
                &sink,
            );
            let traces = vec![sink.finish()];
            let summary = TraceSummary::from_traces(&traces);
            let trace_path = format!("{prefix}.trace.json");
            let summary_path = format!("{prefix}.summary.json");
            std::fs::write(&trace_path, chrome_trace_json(&traces))
                .map_err(|e| format!("writing {trace_path}: {e}"))?;
            std::fs::write(&summary_path, summary.to_json_pretty())
                .map_err(|e| format!("writing {summary_path}: {e}"))?;
            println!(
                "{} on {} — configuration {grid}, one traced batch:",
                model.name, mach.name
            );
            println!("  time/batch      {:>10.3} s", b.total_seconds);
            println!(
                "  comm issued     {:>10.3} s, hidden {:.3} s ({:.1}% overlap efficiency)",
                summary.overlap.total_issued_seconds,
                summary.overlap.total_hidden_seconds,
                100.0 * summary.overlap.overlap_efficiency
            );
            println!("  events          {:>10}", summary.total_events);
            println!("wrote {trace_path} (load in Perfetto / chrome://tracing)");
            println!("wrote {summary_path}");
            Ok(())
        }
        Command::Profile { machine: mname } => {
            let mach = machine(&mname)?;
            let db = BandwidthDb::profile(&mach);
            println!(
                "intra-node bandwidth database for {} ({} GPUs/node):",
                mach.name, mach.gpus_per_node
            );
            println!("{:>4} {:>4} {:>14}", "G0", "G1", "GB/s per pair");
            for e in db.entries() {
                println!("{:>4} {:>4} {:>14.1}", e.g0, e.g1, e.bytes_per_second / 1e9);
            }
            println!("\nJSON:\n{}", db.to_json());
            Ok(())
        }
        Command::Resume { dir, gpus, step } => {
            let store = CheckpointStore::new(&dir);
            let step = match step.or_else(|| store.latest_step()) {
                Some(s) => s,
                None => return Err(format!("no durable checkpoint found under {dir}")),
            };
            let manifest = store.manifest(step).map_err(|e| e.to_string())?;
            let src_grid = manifest.grid();
            let dims = manifest.dims_usize();
            println!("checkpoint {dir} step {step}:");
            println!("  written by      {src_grid} ({} ranks)", src_grid.gpus());
            println!("  training seed   {}", manifest.seed);
            println!("  model dims      {dims:?}");
            println!("  batch rows      {}", manifest.batch_rows);
            println!(
                "  shards          {} files, {} layer checksums each",
                manifest.shards.len(),
                manifest
                    .shards
                    .first()
                    .map_or(0, |s| s.layer_checksums.len())
            );
            let target = gpus.unwrap_or_else(|| src_grid.gpus());
            let legal = legal_resume_grids(&dims, manifest.batch_rows as usize, target);
            if legal.is_empty() {
                return Err(format!(
                    "no legal {target}-rank grid can resume dims {dims:?} with batch {}",
                    manifest.batch_rows
                ));
            }
            println!("\nlegal resume grids on {target} rank(s):");
            for g in &legal {
                let marker = if *g == src_grid { "  (original)" } else { "" };
                println!("  {g}{marker}");
            }
            Ok(())
        }
        Command::Bench { baseline } => {
            let cfg = StepBenchConfig::default();
            let report = run_step_bench(&cfg);
            println!(
                "median step      {:.3} ms   (min {:.3} / max {:.3}, gate stat {:.3})",
                report.median_step_ms, report.min_step_ms, report.max_step_ms, report.gate_step_ms
            );
            println!(
                "median grad-sync {:.3} ms   (gate stat {:.3})",
                report.median_grad_sync_ms, report.gate_grad_sync_ms
            );
            println!(
                "median compute   {:.3} ms   (gate stat {:.3}; NN {:.3} / NT {:.3} / TN {:.3}, \
                 {:.1} KiB packed/step, simd {})",
                report.median_compute_ms,
                report.gate_compute_ms,
                report.gate_compute_nn_ms,
                report.gate_compute_nt_ms,
                report.gate_compute_tn_ms,
                report.packed_bytes_per_step as f64 / 1024.0,
                if report.simd_active { "on" } else { "off" }
            );
            println!("median all-reduce {:.3} ms", report.median_allreduce_ms);
            let dp = grad_sync_overlap_report();
            println!(
                "grad-sync overlap efficiency {:.1}%  ({:.3} ms issued / {:.3} ms hidden on the virtual clock)",
                dp.overlap_efficiency * 100.0,
                dp.total_issued_seconds * 1e3,
                dp.total_hidden_seconds * 1e3
            );
            println!(
                "buffer pool      {} hits / {} misses, {:.1} KiB fresh alloc",
                report.pool_hits,
                report.pool_misses,
                report.pool_alloc_bytes as f64 / 1024.0
            );
            let path = std::path::PathBuf::from(
                baseline.unwrap_or_else(|| "results/bench_step_baseline.json".to_string()),
            );
            match load_report(&path) {
                Ok(base) => {
                    let v = bench_compare(&report, &base, 0.20, None, None);
                    let sync_delta = if base.gate_grad_sync_ms > 0.0 {
                        (report.gate_grad_sync_ms - base.gate_grad_sync_ms) / base.gate_grad_sync_ms
                    } else {
                        0.0
                    };
                    println!(
                        "vs {}: step {:+.1}%, grad-sync {:+.1}%, compute {:+.1}%, all-reduce {:+.1}%{}",
                        path.display(),
                        v.step_delta * 100.0,
                        sync_delta * 100.0,
                        v.compute_delta * 100.0,
                        v.allreduce_delta * 100.0,
                        if v.regressed {
                            "  ** exceeds 20% regression gate **"
                        } else {
                            ""
                        }
                    );
                }
                Err(e) => {
                    return Err(format!(
                        "no step-time baseline to compare against: {e}\n\
                         generate one with `cargo run --release -p axonn-bench \
                         --features simd --bin bench_step -- --write-baseline` (commits to \
                         results/bench_step_baseline.json), or pass an explicit \
                         baseline path: axonnctl bench <baseline.json>"
                    ))
                }
            }
            Ok(())
        }
        Command::Serve {
            checkpoint,
            prompt,
            max_new,
            tp,
        } => {
            let path = std::path::Path::new(&checkpoint);
            let model = if path.is_dir() {
                axonn_serve::load_sharded(path)?
            } else {
                axonn_serve::load_model(path)?
            };
            let cfg = &model.cfg;
            if prompt.is_empty() {
                return Err("prompt must not be empty".to_string());
            }
            if let Some(&t) = prompt.iter().find(|t| **t >= cfg.vocab) {
                return Err(format!("prompt token {t} out of vocab 0..{}", cfg.vocab));
            }
            if prompt.len() + max_new > cfg.seq_len {
                return Err(format!(
                    "prompt ({}) + max new tokens ({max_new}) exceeds the model \
                     window of {} tokens",
                    prompt.len(),
                    cfg.seq_len
                ));
            }
            println!(
                "loaded {} (vocab {}, window {}, dim {}, {} heads x {} layers)",
                checkpoint, cfg.vocab, cfg.seq_len, cfg.dim, cfg.n_heads, cfg.n_layers
            );
            let generated = if tp == 1 {
                let mut session = DecodeSession::start(model, &prompt, Sampling::Greedy, 0);
                while session.generated().len() < max_new && session.step().is_some() {}
                session.generated().to_vec()
            } else {
                if cfg.n_heads % tp != 0 {
                    return Err(format!("{} heads not divisible by --tp {tp}", cfg.n_heads));
                }
                let registry = LiveRegistry::new_enabled(true);
                let streams = tp_greedy_spmd(&model, tp, &prompt, max_new, &registry);
                let (tokens, _) = &streams[0];
                println!(
                    "tensor-parallel decode over {tp} ranks, {} pooled all-reduce calls",
                    registry
                        .snapshot()
                        .counters
                        .get("collective.all_reduce.calls")
                        .copied()
                        .unwrap_or(0)
                );
                tokens.clone()
            };
            println!("prompt       {prompt:?}");
            println!("continuation {generated:?}");
            Ok(())
        }
        Command::Load { requests, clients } => {
            if requests == 0 || clients == 0 {
                return Err("request and client counts must be positive".to_string());
            }
            let model = Arc::new(Gpt::new(serve_demo_model()));
            let registry = LiveRegistry::new_enabled(true);
            let mut engine = ServeEngine::new(
                model,
                ServeConfig {
                    sampling: Sampling::Greedy,
                    ..ServeConfig::default()
                },
                &registry,
            );
            let out = run_load(
                &mut engine,
                &LoadConfig {
                    clients,
                    total_requests: requests,
                    ..LoadConfig::default()
                },
            );
            println!(
                "{} requests over {clients} closed-loop clients, {} engine steps, {:.3} s wall:",
                out.completed + out.evicted,
                out.steps,
                out.wall_s
            );
            println!(
                "  completed {} / evicted {} / overload retries {}",
                out.completed, out.evicted, out.rejected
            );
            println!(
                "  TTFT p50 {:.3} ms / p99 {:.3} ms",
                out.ttft_p50_s * 1e3,
                out.ttft_p99_s * 1e3
            );
            println!(
                "  per-request decode {:.0} tokens/s p50, {:.0} p99; aggregate {:.0} tokens/s",
                out.tokens_per_s_p50, out.tokens_per_s_p99, out.aggregate_tokens_per_s
            );
            print!("{}", render_serve_section(&registry.snapshot()));
            Ok(())
        }
        Command::Monitor { refreshes, sim } => {
            if sim {
                monitor_sim(refreshes)
            } else {
                monitor_live(refreshes)
            }
        }
        Command::Verify {
            grid,
            model,
            inject: defect,
        } => {
            let streams = extract_verify_streams(&grid, model)?;
            certify(streams, defect)
        }
        Command::VerifyServe {
            tp,
            layers,
            tokens,
            inject: defect,
        } => {
            if tp == 0 || layers == 0 || tokens == 0 {
                return Err("--serve needs positive tp, layers and tokens".to_string());
            }
            println!("serve decode schedule: tp={tp}, layers={layers}, tokens={tokens}");
            let streams = axonn_serve::extract_tp_decode_schedule(tp, layers, tokens);
            certify(streams, defect)
        }
        Command::VerifyAll { gpus, model } => {
            if gpus == 0 {
                return Err("gpu count must be positive".to_string());
            }
            // MLP reuses the elastic-restart enumerator so `verify
            // --all-grids` and `resume` agree on what "legal" means.
            let grids: Vec<Grid4d> = match model {
                VerifyModel::Mlp => {
                    let (dims, batch) = default_mlp_shape(gpus);
                    legal_resume_grids(&dims, batch, gpus)
                }
                VerifyModel::Transformer => {
                    let shape = default_transformer_shape(gpus);
                    Grid4d::enumerate(gpus)
                        .into_iter()
                        .filter(|g| transformer_grid_fits(g.gx, g.gy, g.gz, g.gd, &shape))
                        .collect()
                }
            };
            println!(
                "verifying {} {} grid(s) on {gpus} rank(s)",
                grids.len(),
                model.label()
            );
            println!(
                "{:<20} {:>6} {:>8}  {:<44} verdict",
                "grid", "ranks", "issues", "check timing"
            );
            let mut rejected = 0usize;
            for g in &grids {
                let streams = extract_verify_streams(g, model)?;
                let report = check_schedules(&streams);
                println!(
                    "{:<20} {:>6} {:>8}  {:<44} {}",
                    format!("{}x{}x{}x{}", g.gx, g.gy, g.gz, g.gd),
                    report.ranks,
                    report.issues,
                    timing_line(&report.timings_us),
                    if report.is_ok() { "OK" } else { "REJECTED" }
                );
                if !report.is_ok() {
                    rejected += 1;
                    for d in &report.diagnostics {
                        println!("    {d}");
                    }
                }
            }
            if rejected > 0 {
                Err(format!("{rejected} grid(s) failed schedule verification"))
            } else {
                println!("all {} grid(s) verified clean", grids.len());
                Ok(())
            }
        }
    }
}

/// Overlap efficiency from a live snapshot: the fraction of issued
/// collective time the execution plane did *not* spend blocked in
/// `wait` (1 − Σ overlap.wait_seconds / Σ collective seconds). `None`
/// until any timed collective has been recorded.
fn snapshot_overlap_efficiency(snap: &MetricsSnapshot) -> Option<f64> {
    let comm_sum: f64 = snap
        .histograms
        .iter()
        .filter(|(k, _)| k.starts_with("collective.") && k.ends_with(".seconds_hist"))
        .map(|(_, h)| h.sum())
        .sum();
    if comm_sum <= 0.0 {
        return None;
    }
    let wait_sum = snap
        .histograms
        .get("overlap.wait_seconds_hist")
        .map(|h| h.sum())
        .unwrap_or(0.0);
    Some((1.0 - wait_sum / comm_sum).clamp(0.0, 1.0))
}

/// Toy model shape for the in-process serving demos (`load`, the
/// serving section of `monitor`): untrained weights, deterministic
/// greedy decode, costs the same per token as a trained model.
fn serve_demo_model() -> GptModelConfig {
    GptModelConfig {
        vocab: 32,
        seq_len: 24,
        dim: 16,
        n_heads: 2,
        n_layers: 1,
        seed: 11,
    }
}

/// The serving-plane lines of the `monitor` table, rendered from the
/// same live snapshot as the training plane: in-flight streams, queue
/// depth, decode rate and TTFT percentiles from the `serve.*` metrics.
fn render_serve_section(snap: &MetricsSnapshot) -> String {
    let c = |k: &str| snap.counters.get(k).copied().unwrap_or(0);
    if c("serve.requests.submitted") == 0 {
        return "serving plane: idle (no requests yet)\n".to_string();
    }
    let g = |k: &str| snap.gauges.get(k).copied().unwrap_or(0.0);
    let mut out = format!(
        "serving plane: {:.0} in flight, queue depth {:.0}, {:.0} tokens/s\n",
        g("serve.requests.in_flight"),
        g("serve.queue.depth"),
        g("serve.tokens_per_s"),
    );
    out.push_str(&format!(
        "  requests {} submitted / {} completed / {} rejected / {} evicted; \
         tokens {} prefill / {} decoded\n",
        c("serve.requests.submitted"),
        c("serve.requests.completed"),
        c("serve.requests.rejected"),
        c("serve.requests.evicted"),
        c("serve.tokens.prefill"),
        c("serve.tokens.decoded"),
    ));
    if let Some(h) = snap.histograms.get("serve.ttft.seconds") {
        if let (Some(p50), Some(p99)) = (h.quantile(0.5), h.quantile(0.99)) {
            out.push_str(&format!(
                "  TTFT p50 {:.3} ms / p99 {:.3} ms over {} first tokens\n",
                p50 * 1e3,
                p99 * 1e3,
                h.count()
            ));
        }
    }
    out
}

/// One refresh of the `monitor` per-rank table, rendered from the
/// transport heartbeats and step counters. Public-in-crate so tests can
/// assert on the rendering without scraping stdout.
fn render_monitor_table(
    probe: &Comm,
    steps: &[u64],
    elapsed_s: f64,
    snap: &MetricsSnapshot,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>4} {:>7} {:>8} {:>7} {:>9} {:>9}  {}\n",
        "rank", "steps", "step/s", "colls", "MB moved", "hb age", "pending"
    ));
    for t in probe.telemetry() {
        let steps_done = steps.get(t.rank).copied().unwrap_or(0);
        let pending = match &t.pending {
            Some(p) => format!("{} <- rank {} ({} ms)", p.lane, p.src, p.age_ms),
            None => t
                .current_op
                .map(|op| format!("in {op}"))
                .unwrap_or_else(|| "-".into()),
        };
        out.push_str(&format!(
            "{:>4} {:>7} {:>8.1} {:>7} {:>9.2} {:>6} ms  {}\n",
            t.rank,
            steps_done,
            steps_done as f64 / elapsed_s.max(1e-9),
            t.collectives,
            t.bytes_sent as f64 / (1024.0 * 1024.0),
            t.heartbeat_age_ms,
            pending
        ));
    }
    match snapshot_overlap_efficiency(snap) {
        Some(eff) => out.push_str(&format!(
            "overlap efficiency {:.1}% (virtual clock)\n",
            eff * 100.0
        )),
        None => out.push_str("overlap efficiency n/a (no timed collectives yet)\n"),
    }
    out
}

/// `axonnctl monitor`: drive a small 4-rank training-shaped job on the
/// thread-backed runtime with a live registry wired in, and refresh the
/// per-rank table while it runs. Ends with a Prometheus excerpt to show
/// the exposition path.
fn monitor_live(refreshes: usize) -> Result<(), String> {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{Duration, Instant};

    const WORLD: usize = 4;
    let refreshes = refreshes.max(1);
    let registry = LiveRegistry::new_enabled(true);
    let comms = CommWorld::builder(WORLD)
        .cost(Arc::new(RingCostModel::new(1e9, 1e9)))
        .metrics(registry.clone())
        .build();
    let probe = comms[0].clone();
    let steps: Arc<Vec<AtomicU64>> = Arc::new((0..WORLD).map(|_| AtomicU64::new(0)).collect());
    let per_refresh_steps = 20usize;
    let total_steps = per_refresh_steps * refreshes;
    let start = Instant::now();
    let workers: Vec<_> = comms
        .into_iter()
        .map(|c| {
            let steps = steps.clone();
            std::thread::spawn(move || {
                let g = ProcessGroup::new((0..WORLD).collect());
                for _ in 0..total_steps {
                    let mut grads = vec![c.rank() as f32; 4096];
                    c.all_reduce(&g, &mut grads);
                    steps[c.rank()].fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
        })
        .collect();
    // The serving plane shares the registry: a small engine decodes a
    // few requests per refresh so `monitor` shows both planes at once.
    let mut serve_engine = ServeEngine::new(
        Arc::new(Gpt::new(serve_demo_model())),
        ServeConfig::default(),
        &registry,
    );
    for r in 0..refreshes {
        std::thread::sleep(Duration::from_millis(40));
        for k in 0..4usize {
            let _ = serve_engine.submit(ServeRequest {
                prompt: vec![(r + k) % 8, (r + k + 1) % 8, 3],
                max_new_tokens: 4,
                deadline_steps: None,
            });
        }
        serve_engine.run_until_idle(256);
        let counts: Vec<u64> = steps.iter().map(|s| s.load(Ordering::Relaxed)).collect();
        println!("--- refresh {}/{refreshes} ---", r + 1);
        let snap = registry.snapshot();
        print!(
            "{}",
            render_monitor_table(&probe, &counts, start.elapsed().as_secs_f64(), &snap)
        );
        print!("{}", render_serve_section(&snap));
    }
    for w in workers {
        w.join()
            .map_err(|_| "monitor worker panicked".to_string())?;
    }
    println!("\nPrometheus exposition (excerpt):");
    for line in registry
        .snapshot()
        .prometheus_text()
        .lines()
        .filter(|l| l.contains("axonn_collective_all_reduce"))
        .take(12)
    {
        println!("{line}");
    }
    Ok(())
}

/// `axonnctl monitor --sim`: publish a simulated batch through the same
/// live registry and render the snapshot — identical metric names to a
/// running job, so dashboards can be built before the job exists.
fn monitor_sim(refreshes: usize) -> Result<(), String> {
    let mach = machine("frontier")?;
    let db = BandwidthDb::profile(&mach);
    let model = model(5)?;
    let grid = Grid4d::new(2, 2, 2, 4);
    let registry = LiveRegistry::new_enabled(true);
    for r in 0..refreshes.max(1) {
        let sink = TraceSink::new(0);
        let b = simulate_batch_traced(&mach, &db, grid, &model, 1 << 18, SimOptions::full(), &sink);
        publish_live_metrics(&[sink.finish()], &registry);
        println!(
            "--- refresh {}/{} (simulated {} on {}, {:.3} s/batch) ---",
            r + 1,
            refreshes.max(1),
            model.name,
            mach.name,
            b.total_seconds
        );
        let snap = registry.snapshot();
        for (name, value) in snap
            .counters
            .iter()
            .filter(|(k, _)| k.ends_with(".calls") || k.ends_with(".bytes"))
        {
            println!("{name:<40} {value}");
        }
        match snapshot_overlap_efficiency(&snap) {
            Some(eff) => println!("overlap efficiency {:.1}% (virtual clock)", eff * 100.0),
            None => println!("overlap efficiency n/a"),
        }
    }
    println!("\nPrometheus exposition (excerpt):");
    for line in registry.snapshot().prometheus_text().lines().take(12) {
        println!("{line}");
    }
    Ok(())
}

/// Extract per-rank schedule streams for one training step of the
/// default-shaped model on `grid`, rejecting shapes that don't fit with
/// a clean error instead of a downstream assert.
fn extract_verify_streams(
    grid: &Grid4d,
    model: VerifyModel,
) -> Result<Vec<Vec<axonn_collectives::SchedEvent>>, String> {
    let world = grid.gpus();
    let (gx, gy, gz, gd) = (grid.gx, grid.gy, grid.gz, grid.gd);
    match model {
        VerifyModel::Mlp => {
            let (dims, batch) = default_mlp_shape(world);
            if !grid_fits(grid, &dims, batch) {
                return Err(format!(
                    "mlp shape {dims:?} (batch {batch}) does not fit grid \
                     {gx}x{gy}x{gz}x{gd}"
                ));
            }
            Ok(extract_mlp_schedules(
                gx,
                gy,
                gz,
                gd,
                &dims,
                batch,
                OverlapConfig::all(),
            ))
        }
        VerifyModel::Transformer => {
            let shape = default_transformer_shape(world);
            if !transformer_grid_fits(gx, gy, gz, gd, &shape) {
                return Err(format!(
                    "transformer shape {shape:?} does not fit grid {gx}x{gy}x{gz}x{gd}"
                ));
            }
            Ok(extract_transformer_schedules(
                gx,
                gy,
                gz,
                gd,
                &shape,
                OverlapConfig::all(),
            ))
        }
    }
}

/// Grad-sync overlap probe behind `axonnctl bench`: one traced training
/// step of a tiny transformer stack on a (1, 2, 2, 2) grid with small
/// buckets, so several buckets seal — and issue their reduce-scatters —
/// while the backward drain is still running. The returned report counts
/// only the bucketed pipeline's data-group collectives and says how much
/// of their virtual-clock time was hidden under other work.
fn grad_sync_overlap_report() -> OverlapReport {
    let cost: Arc<dyn CostModel> = Arc::new(RingCostModel::new(1e8, 1e8));
    let run = run_spmd_traced(8, cost, |comm| {
        let grid = GridTopology::new(1, 2, 2, 2, comm.rank());
        let mut stack = TransformerStack::new(&grid, 8, 8, 2, 2, 4, 42, OverlapConfig::all());
        stack.set_grad_bucket_elems(8);
        let tokens: Vec<usize> = (0..16).map(|i| (i * 5 + 1) % 8).collect();
        let targets: Vec<usize> = (0..16).map(|i| (i * 3 + 2) % 8).collect();
        stack.train_step(&comm, &grid, &tokens, &targets, 0.01)
    });
    OverlapReport::data_parallel_overlap(&run.traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn grad_sync_overlap_probe_reports_hidden_time() {
        let dp = grad_sync_overlap_report();
        assert!(
            dp.total_issued_seconds > 0.0,
            "probe issued nothing: {dp:?}"
        );
        assert!(dp.overlap_efficiency > 0.0, "probe hid nothing: {dp:?}");
    }

    #[test]
    fn parse_simple_subcommands() {
        assert_eq!(
            Command::parse(&sv(&["machines"])).unwrap(),
            Command::Machines
        );
        assert_eq!(Command::parse(&sv(&["models"])).unwrap(), Command::Models);
        assert_eq!(
            Command::parse(&sv(&["bench"])).unwrap(),
            Command::Bench { baseline: None }
        );
        assert_eq!(
            Command::parse(&sv(&["bench", "old.json"])).unwrap(),
            Command::Bench {
                baseline: Some("old.json".into())
            }
        );
        assert_eq!(
            Command::parse(&sv(&["profile", "frontier"])).unwrap(),
            Command::Profile {
                machine: "frontier".into()
            }
        );
    }

    #[test]
    fn parse_monitor_variants() {
        assert_eq!(
            Command::parse(&sv(&["monitor"])).unwrap(),
            Command::Monitor {
                refreshes: 3,
                sim: false
            }
        );
        assert_eq!(
            Command::parse(&sv(&["monitor", "5", "--sim"])).unwrap(),
            Command::Monitor {
                refreshes: 5,
                sim: true
            }
        );
        assert!(Command::parse(&sv(&["monitor", "soon"]))
            .unwrap_err()
            .contains("invalid refresh count"));
    }

    #[test]
    fn run_monitor_live_renders_snapshot() {
        // The acceptance check: `axonnctl monitor` renders a live
        // per-rank table against a running (in-process) job.
        run(Command::Monitor {
            refreshes: 2,
            sim: false,
        })
        .unwrap();
    }

    #[test]
    fn run_monitor_sim_publishes_same_names() {
        run(Command::Monitor {
            refreshes: 1,
            sim: true,
        })
        .unwrap();
    }

    #[test]
    fn monitor_table_renders_ranks_and_overlap() {
        use std::time::Duration;
        let registry = LiveRegistry::new_enabled(true);
        let comms = CommWorld::builder(2)
            .cost(Arc::new(RingCostModel::new(1e9, 1e9)))
            .metrics(registry.clone())
            .build();
        let probe = comms[0].clone();
        let workers: Vec<_> = comms
            .into_iter()
            .map(|c| {
                std::thread::spawn(move || {
                    let g = ProcessGroup::new((0..2).collect());
                    let mut v = vec![c.rank() as f32; 256];
                    c.all_reduce(&g, &mut v);
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        std::thread::sleep(Duration::from_millis(1));
        let table = render_monitor_table(&probe, &[1, 1], 0.05, &registry.snapshot());
        assert!(table.contains("rank"), "{table}");
        assert!(table.contains("overlap efficiency"), "{table}");
        // Both ranks appear with their step counts.
        assert!(table.lines().count() >= 4, "{table}");
    }

    #[test]
    fn bench_without_baseline_is_a_clear_error() {
        let e = run(Command::Bench {
            baseline: Some("/nonexistent/baseline.json".into()),
        })
        .unwrap_err();
        assert!(e.contains("no step-time baseline"), "unexpected: {e}");
        assert!(e.contains("--write-baseline"), "no guidance: {e}");
    }

    #[test]
    fn parse_plan_with_default_batch() {
        let c = Command::parse(&sv(&["plan", "frontier", "20", "512"])).unwrap();
        assert_eq!(
            c,
            Command::Plan {
                machine: "frontier".into(),
                billions: 20,
                gpus: 512,
                batch_tokens: HEADLINE_BATCH_TOKENS
            }
        );
    }

    #[test]
    fn parse_simulate_full() {
        let c = Command::parse(&sv(&[
            "simulate", "alps", "40", "2", "2", "16", "32", "1048576",
        ]))
        .unwrap();
        match c {
            Command::Simulate {
                grid, batch_tokens, ..
            } => {
                assert_eq!(grid, Grid4d::new(2, 2, 16, 32));
                assert_eq!(batch_tokens, 1 << 20);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parse_errors_are_informative() {
        assert!(Command::parse(&[])
            .unwrap_err()
            .contains("missing subcommand"));
        assert!(Command::parse(&sv(&["dance"]))
            .unwrap_err()
            .contains("unknown subcommand"));
        assert!(Command::parse(&sv(&["plan", "frontier"]))
            .unwrap_err()
            .contains("model size"));
        assert!(Command::parse(&sv(&["plan", "frontier", "x", "4"]))
            .unwrap_err()
            .contains("invalid"));
    }

    #[test]
    fn run_machines_and_models() {
        run(Command::Machines).unwrap();
        run(Command::Models).unwrap();
    }

    #[test]
    fn run_simulate_small() {
        run(Command::Simulate {
            machine: "frontier".into(),
            billions: 5,
            grid: Grid4d::new(2, 2, 2, 4),
            batch_tokens: 1 << 18,
        })
        .unwrap();
    }

    #[test]
    fn parse_trace_defaults_prefix() {
        let c = Command::parse(&sv(&["trace", "frontier", "20", "2", "2", "4", "8"])).unwrap();
        match c {
            Command::Trace {
                grid,
                batch_tokens,
                prefix,
                ..
            } => {
                assert_eq!(grid, Grid4d::new(2, 2, 4, 8));
                assert_eq!(batch_tokens, HEADLINE_BATCH_TOKENS);
                assert_eq!(prefix, "axonn-frontier-20b");
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn run_trace_writes_chrome_and_summary_files() {
        let prefix = std::env::temp_dir().join("axonnctl-trace-test");
        let prefix = prefix.to_str().unwrap().to_string();
        run(Command::Trace {
            machine: "frontier".into(),
            billions: 5,
            grid: Grid4d::new(2, 2, 2, 2),
            batch_tokens: 1 << 17,
            prefix: prefix.clone(),
        })
        .unwrap();
        let chrome = std::fs::read_to_string(format!("{prefix}.trace.json")).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&chrome).expect("valid chrome JSON");
        drop(doc);
        let summary = std::fs::read_to_string(format!("{prefix}.summary.json")).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&summary).expect("valid summary JSON");
        drop(doc);
        std::fs::remove_file(format!("{prefix}.trace.json")).ok();
        std::fs::remove_file(format!("{prefix}.summary.json")).ok();
    }

    #[test]
    fn run_plan_small() {
        run(Command::Plan {
            machine: "perlmutter".into(),
            billions: 5,
            gpus: 64,
            batch_tokens: 1 << 18,
        })
        .unwrap();
    }

    #[test]
    fn bad_machine_is_rejected() {
        let e = run(Command::Profile {
            machine: "summit".into(),
        })
        .unwrap_err();
        assert!(e.contains("unknown machine"));
    }

    #[test]
    fn parse_verify_variants() {
        assert_eq!(
            Command::parse(&sv(&["verify", "2", "1", "2", "1"])).unwrap(),
            Command::Verify {
                grid: Grid4d::new(2, 1, 2, 1),
                model: VerifyModel::Mlp,
                inject: None
            }
        );
        assert_eq!(
            Command::parse(&sv(&["verify", "1", "2", "1", "2", "transformer"])).unwrap(),
            Command::Verify {
                grid: Grid4d::new(1, 2, 1, 2),
                model: VerifyModel::Transformer,
                inject: None
            }
        );
        assert_eq!(
            Command::parse(&sv(&["verify", "2", "2", "1", "1", "--inject", "reorder"])).unwrap(),
            Command::Verify {
                grid: Grid4d::new(2, 2, 1, 1),
                model: VerifyModel::Mlp,
                inject: Some(DefectKind::Reorder)
            }
        );
        assert_eq!(
            Command::parse(&sv(&["verify", "--all-grids", "8", "transformer"])).unwrap(),
            Command::VerifyAll {
                gpus: 8,
                model: VerifyModel::Transformer
            }
        );
        assert_eq!(
            Command::parse(&sv(&["verify", "--serve", "2"])).unwrap(),
            Command::VerifyServe {
                tp: 2,
                layers: 2,
                tokens: 3,
                inject: None
            }
        );
        assert_eq!(
            Command::parse(&sv(&[
                "verify",
                "--serve",
                "4",
                "3",
                "5",
                "--inject",
                "overlap-race"
            ]))
            .unwrap(),
            Command::VerifyServe {
                tp: 4,
                layers: 3,
                tokens: 5,
                inject: Some(DefectKind::OverlapRace)
            }
        );
        assert_eq!(
            Command::parse(&sv(&[
                "verify",
                "1",
                "2",
                "1",
                "2",
                "--inject",
                "slab-reuse"
            ]))
            .unwrap(),
            Command::Verify {
                grid: Grid4d::new(1, 2, 1, 2),
                model: VerifyModel::Mlp,
                inject: Some(DefectKind::SlabReuse)
            }
        );
        let e =
            Command::parse(&sv(&["verify", "2", "1", "1", "1", "--inject", "bogus"])).unwrap_err();
        assert!(
            e.contains("unknown defect") && e.contains("early-recycle"),
            "{e}"
        );
        assert!(Command::parse(&sv(&["verify", "--serve", "2", "3"]))
            .unwrap_err()
            .contains("--serve takes"));
        assert!(
            Command::parse(&sv(&["verify", "2", "1", "1", "1", "resnet"]))
                .unwrap_err()
                .contains("unknown model")
        );
    }

    #[test]
    fn run_verify_accepts_clean_grids() {
        run(Command::Verify {
            grid: Grid4d::new(2, 1, 2, 1),
            model: VerifyModel::Mlp,
            inject: None,
        })
        .unwrap();
        run(Command::Verify {
            grid: Grid4d::new(1, 2, 1, 2),
            model: VerifyModel::Transformer,
            inject: None,
        })
        .unwrap();
    }

    #[test]
    fn run_verify_rejects_each_seeded_defect() {
        for defect in [
            DefectKind::Reorder,
            DefectKind::MissingWait,
            DefectKind::CountMismatch,
        ] {
            // Ok(()) here means "the defect was injected AND rejected";
            // a clean report under --inject is an Err.
            run(Command::Verify {
                grid: Grid4d::new(2, 2, 1, 1),
                model: VerifyModel::Mlp,
                inject: Some(defect),
            })
            .unwrap_or_else(|e| panic!("{}: {e}", defect.label()));
        }
    }

    #[test]
    fn run_verify_rejects_race_and_slab_defects() {
        // The gradsync overlap pipeline on a data-parallel transformer
        // grid carries tagged pooled async issues — the injection sites
        // the happens-before and slab analyses need.
        for defect in [
            DefectKind::OverlapRace,
            DefectKind::SlabReuse,
            DefectKind::EarlyRecycle,
        ] {
            run(Command::Verify {
                grid: Grid4d::new(1, 2, 1, 2),
                model: VerifyModel::Transformer,
                inject: Some(defect),
            })
            .unwrap_or_else(|e| panic!("{}: {e}", defect.label()));
        }
    }

    #[test]
    fn run_verify_serve_certifies_and_rejects() {
        for tp in [1usize, 2, 4] {
            run(Command::VerifyServe {
                tp,
                layers: 2,
                tokens: 3,
                inject: None,
            })
            .unwrap_or_else(|e| panic!("tp={tp}: {e}"));
        }
        // Ok(()) means "injected AND rejected".
        run(Command::VerifyServe {
            tp: 2,
            layers: 1,
            tokens: 2,
            inject: Some(DefectKind::CountMismatch),
        })
        .unwrap();
        let e = run(Command::VerifyServe {
            tp: 1,
            layers: 1,
            tokens: 1,
            inject: Some(DefectKind::Reorder),
        })
        .unwrap_err();
        assert!(e.contains("at least 2 ranks"));
    }

    #[test]
    fn run_verify_all_grids_sweeps_the_enumeration() {
        run(Command::VerifyAll {
            gpus: 4,
            model: VerifyModel::Mlp,
        })
        .unwrap();
        run(Command::VerifyAll {
            gpus: 4,
            model: VerifyModel::Transformer,
        })
        .unwrap();
    }

    #[test]
    fn run_verify_inject_needs_two_ranks() {
        let e = run(Command::Verify {
            grid: Grid4d::new(1, 1, 1, 1),
            model: VerifyModel::Mlp,
            inject: Some(DefectKind::Reorder),
        })
        .unwrap_err();
        assert!(e.contains("at least 2 ranks"));
    }

    #[test]
    fn parse_serve_and_load_variants() {
        assert_eq!(
            Command::parse(&sv(&["serve", "ckpt.json"])).unwrap(),
            Command::Serve {
                checkpoint: "ckpt.json".into(),
                prompt: vec![0, 1, 2],
                max_new: 16,
                tp: 1
            }
        );
        assert_eq!(
            Command::parse(&sv(&["serve", "d/", "8", "--tp", "2", "--prompt", "4,5,6"])).unwrap(),
            Command::Serve {
                checkpoint: "d/".into(),
                prompt: vec![4, 5, 6],
                max_new: 8,
                tp: 2
            }
        );
        assert!(Command::parse(&sv(&["serve"]))
            .unwrap_err()
            .contains("checkpoint path"));
        assert!(Command::parse(&sv(&["serve", "c", "--tp", "0"]))
            .unwrap_err()
            .contains("invalid tp"));
        assert!(Command::parse(&sv(&["serve", "c", "--prompt", "1,x"]))
            .unwrap_err()
            .contains("invalid prompt token"));
        assert_eq!(
            Command::parse(&sv(&["load"])).unwrap(),
            Command::Load {
                requests: 200,
                clients: 8
            }
        );
        assert_eq!(
            Command::parse(&sv(&["load", "50", "4"])).unwrap(),
            Command::Load {
                requests: 50,
                clients: 4
            }
        );
    }

    #[test]
    fn run_serve_decodes_saved_checkpoint() {
        use axonn_lm::Checkpoint;
        let dir = std::env::temp_dir().join(format!("axonnctl_serve_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let mut model = Gpt::new(serve_demo_model());
        Checkpoint::capture(&mut model).save(&path).unwrap();
        // Single-rank KV-cached decode.
        run(Command::Serve {
            checkpoint: path.to_str().unwrap().into(),
            prompt: vec![1, 2, 3],
            max_new: 4,
            tp: 1,
        })
        .unwrap();
        // Tensor-parallel decode over 2 simulated ranks.
        run(Command::Serve {
            checkpoint: path.to_str().unwrap().into(),
            prompt: vec![1, 2, 3],
            max_new: 4,
            tp: 2,
        })
        .unwrap();
        // Window overflow is a clean error, not a panic.
        let e = run(Command::Serve {
            checkpoint: path.to_str().unwrap().into(),
            prompt: vec![1, 2, 3],
            max_new: 64,
            tp: 1,
        })
        .unwrap_err();
        assert!(e.contains("window"), "unexpected: {e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_load_reports_closed_loop_percentiles() {
        run(Command::Load {
            requests: 30,
            clients: 4,
        })
        .unwrap();
        let e = run(Command::Load {
            requests: 0,
            clients: 4,
        })
        .unwrap_err();
        assert!(e.contains("positive"));
    }

    #[test]
    fn serve_section_renders_from_live_metrics() {
        let registry = LiveRegistry::new_enabled(true);
        assert!(render_serve_section(&registry.snapshot()).contains("idle"));
        let mut engine = ServeEngine::new(
            Arc::new(Gpt::new(serve_demo_model())),
            ServeConfig::default(),
            &registry,
        );
        engine
            .submit(ServeRequest {
                prompt: vec![1, 2],
                max_new_tokens: 3,
                deadline_steps: None,
            })
            .unwrap();
        engine.run_until_idle(64);
        let section = render_serve_section(&registry.snapshot());
        assert!(section.contains("serving plane:"), "{section}");
        assert!(section.contains("1 completed"), "{section}");
        assert!(section.contains("TTFT p50"), "{section}");
    }

    #[test]
    fn parse_resume_variants() {
        assert_eq!(
            Command::parse(&sv(&["resume", "/tmp/ckpt"])).unwrap(),
            Command::Resume {
                dir: "/tmp/ckpt".into(),
                gpus: None,
                step: None
            }
        );
        assert_eq!(
            Command::parse(&sv(&["resume", "/tmp/ckpt", "8", "4"])).unwrap(),
            Command::Resume {
                dir: "/tmp/ckpt".into(),
                gpus: Some(8),
                step: Some(4)
            }
        );
        assert!(Command::parse(&sv(&["resume"]))
            .unwrap_err()
            .contains("checkpoint dir"));
    }

    #[test]
    fn run_resume_lists_legal_grids() {
        use axonn_core::{Activation, GridTopology, Network4d, OverlapConfig};
        use axonn_exec::run_spmd;
        use axonn_ft::save_checkpoint;
        use axonn_perfmodel::Grid4d as G;
        use axonn_tensor::Matrix;
        use std::sync::Arc as StdArc;

        let dir = std::env::temp_dir().join(format!("axonnctl_resume_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = StdArc::new(axonn_ft::CheckpointStore::new(&dir));
        let grid = G::new(2, 1, 1, 1);
        let store2 = store.clone();
        run_spmd(2, move |comm| {
            let topo = GridTopology::new(2, 1, 1, 1, comm.rank());
            let mut net = Network4d::new(
                comm,
                topo,
                &[8, 16, 8],
                Activation::Gelu,
                3,
                OverlapConfig::all(),
                false,
            );
            let x = Matrix::random(4, 8, 1.0, 5);
            let t = Matrix::random(4, 8, 1.0, 6);
            net.train_step(&x, &t, 0.01);
            let shards = net.weight_shards();
            save_checkpoint(net.comm(), &grid, &store2, 1, 3, &[8, 16, 8], 4, &shards).unwrap();
        });
        // Inspect for a different target rank count.
        run(Command::Resume {
            dir: dir.to_str().unwrap().into(),
            gpus: Some(4),
            step: None,
        })
        .unwrap();
        // Missing/empty store is a clear error.
        let e = run(Command::Resume {
            dir: "/nonexistent/ckpt".into(),
            gpus: None,
            step: None,
        })
        .unwrap_err();
        assert!(e.contains("no durable checkpoint"), "unexpected: {e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn indivisible_batch_is_rejected() {
        let e = run(Command::Simulate {
            machine: "frontier".into(),
            billions: 5,
            grid: Grid4d::new(1, 1, 1, 3),
            batch_tokens: 1 << 18,
        })
        .unwrap_err();
        assert!(e.contains("not divisible"));
    }
}
