//! The experiment series of the paper's evaluation, shared by the
//! harness binaries.

use axonn_cluster::{BandwidthDb, Machine};
use axonn_gpt::{model_by_billions, GptConfig, HEADLINE_BATCH_TOKENS};

/// The weak-scaling pairs run on each machine (Figs. 6 & 8, Table III).
pub fn weak_scaling_pairs(machine: &str) -> Vec<(GptConfig, usize)> {
    let pairs: &[(usize, usize)] = match machine {
        "Perlmutter" => &[(5, 512), (10, 1024), (20, 2048), (40, 4096)],
        "Frontier" => &[
            (5, 512),
            (10, 1024),
            (20, 2048),
            (40, 4096),
            (80, 8192),
            (160, 16384),
            (320, 32768),
        ],
        "Alps" => &[(10, 1024), (20, 2048), (40, 4096), (60, 6144)],
        other => panic!("no weak-scaling series for '{other}'"),
    };
    pairs
        .iter()
        .map(|&(b, g)| (model_by_billions(b), g))
        .collect()
}

/// The global batch used by the headline runs.
pub fn headline_batch() -> usize {
    HEADLINE_BATCH_TOKENS
}

/// Machine + profiled bandwidth database, together.
pub fn machine_with_db(name: &str) -> (Machine, BandwidthDb) {
    let m = Machine::by_name(name);
    let db = BandwidthDb::profile(&m);
    (m, db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_match_paper_scales() {
        assert_eq!(weak_scaling_pairs("Perlmutter").len(), 4);
        assert_eq!(weak_scaling_pairs("Frontier").len(), 7);
        assert_eq!(weak_scaling_pairs("Alps").len(), 4);
        let (m, g) = &weak_scaling_pairs("Alps")[3];
        assert_eq!(m.name, "GPT-60B");
        assert_eq!(*g, 6144);
    }
}
