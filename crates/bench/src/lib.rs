//! Shared plumbing for the figure/table harness binaries.
//!
//! One binary per table and figure of the paper lives in `src/bin/`;
//! each prints a human-readable table mirroring the paper's rows/series
//! and writes a machine-readable JSON copy under `results/`. The
//! `paper` module holds the published numbers so every run prints a
//! paper-vs-ours comparison (recorded in EXPERIMENTS.md).

use std::fs;
use std::path::PathBuf;

pub mod drift;
pub mod memor;
pub mod paper;
pub mod series;
pub mod serve;
pub mod step;

/// Render an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Write a JSON artifact under `results/` (created on demand) and return
/// its path.
pub fn emit_json<T: serde::Serialize>(name: &str, value: &T) -> PathBuf {
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    fs::write(
        &path,
        serde_json::to_string_pretty(value).expect("serialize"),
    )
    .expect("write results file");
    println!("[results] wrote {}", path.display());
    path
}

/// Format seconds compactly.
pub fn fmt_secs(s: f64) -> String {
    if s < 1.0 {
        format!("{:.1} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

/// Format a duration given in seconds as days or months (Fig. 9 axes).
pub fn fmt_duration_long(seconds: f64) -> String {
    let days = seconds / 86_400.0;
    if days < 60.0 {
        format!("{days:.1} days")
    } else if days < 730.0 {
        format!("{:.1} months", days / 30.44)
    } else {
        format!("{:.1} years", days / 365.25)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting_bands() {
        assert!(fmt_duration_long(86_400.0 * 25.5).contains("days"));
        assert!(fmt_duration_long(86_400.0 * 30.44 * 15.0).contains("months"));
        assert!(fmt_duration_long(86_400.0 * 365.25 * 14.0).contains("years"));
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_secs(0.0123), "12.3 ms");
        assert_eq!(fmt_secs(2.5), "2.50 s");
    }
}
