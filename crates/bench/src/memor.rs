//! Shared model-size ladder and reporting for the memorization figures
//! (Figs. 10 and 11).

use crate::print_table;
use axonn_memorize::{ModelScale, TrialStats};

/// How many trials each ladder rung runs (the paper: 5 for 1B-13B, 3 for
/// 70B, 1 for 405B).
pub fn trials_for(scale: &ModelScale) -> usize {
    if scale.pretrain_epochs > 0 {
        1
    } else if scale.dim >= 40 {
        3
    } else {
        5
    }
}

/// The model-size ladder: CPU-scale proxies for the paper's Llama family.
/// The dims sit in the regime where capacity genuinely binds at our
/// corpus size (see DESIGN.md scale substitution): below ~d=16 nothing
/// memorizes, by d=56 everything in the 6-epoch bucket does; width/LR
/// interactions cap the ladder at d=72 for the shared hyperparameters.
pub fn ladder() -> Vec<ModelScale> {
    vec![
        ModelScale::new("1B-proxy (TinyLlama)", 12, 2, 2),
        ModelScale::new("7B-proxy (Llama 2)", 16, 2, 2),
        ModelScale::new("8B-proxy (Llama 3.1)", 20, 2, 2),
        ModelScale::new("13B-proxy (Llama 2)", 24, 2, 2),
        ModelScale::new("70B-proxy (Llama 2)", 40, 4, 3),
        ModelScale::new("70B-proxy (Llama 3.1)", 56, 4, 3),
        // The 405B-proxy saw the whole corpus during "pre-training",
        // reproducing the paper's nonzero control-bucket memorization.
        ModelScale::new("405B-proxy (Llama 3.1)", 72, 4, 3).with_pretraining(2),
    ]
}

/// Print per-scale exact-match statistics in the Fig. 10 layout (control
/// first, then 1 / 4 / 6 epochs; mean with min-max error bars).
pub fn report(title: &str, results: &[TrialStats]) {
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let pct = |i: usize| {
                let b = &r.buckets[i];
                if (b.max_pct - b.min_pct).abs() < 1e-9 {
                    format!("{:.0}%", b.mean_pct)
                } else {
                    format!("{:.0}% [{:.0}-{:.0}]", b.mean_pct, b.min_pct, b.max_pct)
                }
            };
            vec![
                r.label.clone(),
                r.parameters.to_string(),
                format!("x{}", r.trials),
                pct(3), // control (0 epochs)
                pct(0), // 1 epoch
                pct(1), // 4 epochs
                pct(2), // 6 epochs
            ]
        })
        .collect();
    print_table(
        title,
        &[
            "model",
            "params",
            "trials",
            "0 Ep (control)",
            "1 Ep",
            "4 Ep",
            "6 Ep",
        ],
        &rows,
    );
}
