//! Published numbers from the paper, used by every harness binary to
//! print paper-vs-ours comparisons.

/// One row of Table III (sustained flop/s for weak scaling).
#[derive(Debug, Clone, Copy)]
pub struct Table3Row {
    pub machine: &'static str,
    pub gpus: usize,
    pub model_billions: usize,
    pub total_pflops: f64,
    pub pct_advertised: f64,
    pub pct_empirical: f64,
}

/// Table III of the paper, verbatim.
pub const TABLE3: &[Table3Row] = &[
    Table3Row {
        machine: "Perlmutter",
        gpus: 512,
        model_billions: 5,
        total_pflops: 80.8,
        pct_advertised: 50.6,
        pct_empirical: 56.2,
    },
    Table3Row {
        machine: "Perlmutter",
        gpus: 1024,
        model_billions: 10,
        total_pflops: 197.8,
        pct_advertised: 61.9,
        pct_empirical: 68.8,
    },
    Table3Row {
        machine: "Perlmutter",
        gpus: 2048,
        model_billions: 20,
        total_pflops: 352.5,
        pct_advertised: 55.2,
        pct_empirical: 61.3,
    },
    Table3Row {
        machine: "Perlmutter",
        gpus: 4096,
        model_billions: 40,
        total_pflops: 620.1,
        pct_advertised: 48.5,
        pct_empirical: 53.9,
    },
    Table3Row {
        machine: "Frontier",
        gpus: 512,
        model_billions: 5,
        total_pflops: 40.4,
        pct_advertised: 41.1,
        pct_empirical: 63.3,
    },
    Table3Row {
        machine: "Frontier",
        gpus: 1024,
        model_billions: 10,
        total_pflops: 77.3,
        pct_advertised: 39.3,
        pct_empirical: 60.4,
    },
    Table3Row {
        machine: "Frontier",
        gpus: 2048,
        model_billions: 20,
        total_pflops: 145.7,
        pct_advertised: 37.0,
        pct_empirical: 57.0,
    },
    Table3Row {
        machine: "Frontier",
        gpus: 4096,
        model_billions: 40,
        total_pflops: 295.9,
        pct_advertised: 37.6,
        pct_empirical: 57.9,
    },
    Table3Row {
        machine: "Frontier",
        gpus: 8192,
        model_billions: 80,
        total_pflops: 571.4,
        pct_advertised: 36.3,
        pct_empirical: 56.0,
    },
    Table3Row {
        machine: "Frontier",
        gpus: 16384,
        model_billions: 160,
        total_pflops: 1019.9,
        pct_advertised: 32.4,
        pct_empirical: 49.9,
    },
    Table3Row {
        machine: "Frontier",
        gpus: 32768,
        model_billions: 320,
        total_pflops: 1381.0,
        pct_advertised: 22.0,
        pct_empirical: 33.8,
    },
    Table3Row {
        machine: "Alps",
        gpus: 1024,
        model_billions: 10,
        total_pflops: 310.0,
        pct_advertised: 30.6,
        pct_empirical: 37.3,
    },
    Table3Row {
        machine: "Alps",
        gpus: 2048,
        model_billions: 20,
        total_pflops: 621.6,
        pct_advertised: 30.7,
        pct_empirical: 37.4,
    },
    Table3Row {
        machine: "Alps",
        gpus: 4096,
        model_billions: 40,
        total_pflops: 1095.8,
        pct_advertised: 27.0,
        pct_empirical: 33.0,
    },
    Table3Row {
        machine: "Alps",
        gpus: 6144,
        model_billions: 60,
        total_pflops: 1423.1,
        pct_advertised: 23.4,
        pct_empirical: 28.6,
    },
];

/// A prior-work row of Table I (the survey portion is static context).
#[derive(Debug, Clone, Copy)]
pub struct Table1Row {
    pub study: &'static str,
    pub framework: &'static str,
    pub model_size: &'static str,
    pub batch_size: &'static str,
    pub hardware: &'static str,
    pub scale: &'static str,
    pub pct_peak: &'static str,
    pub petaflops: &'static str,
}

pub const TABLE1_PRIOR: &[Table1Row] = &[
    Table1Row {
        study: "SUPER",
        framework: "LBANN",
        model_size: "3B*",
        batch_size: "0.5M*",
        hardware: "NVIDIA V100",
        scale: "1,024 GPUs",
        pct_peak: "-",
        petaflops: "-",
    },
    Table1Row {
        study: "KARMA",
        framework: "KARMA",
        model_size: "17B",
        batch_size: "2.0M*",
        hardware: "NVIDIA V100",
        scale: "2,048 GPUs",
        pct_peak: "-",
        petaflops: "-",
    },
    Table1Row {
        study: "FORGE",
        framework: "GPT-NeoX",
        model_size: "1.44B",
        batch_size: "16.8M",
        hardware: "AMD MI250X",
        scale: "2,048 GCDs",
        pct_peak: "~29%",
        petaflops: "~112.6",
    },
    Table1Row {
        study: "Dash et al.",
        framework: "Megatron-DeepSpeed",
        model_size: "1000B",
        batch_size: "19.7M",
        hardware: "AMD MI250X",
        scale: "3,072 GCDs",
        pct_peak: "31.9%",
        petaflops: "188.0",
    },
    Table1Row {
        study: "MT-NLG",
        framework: "Megatron-DeepSpeed",
        model_size: "530B",
        batch_size: "4.0M",
        hardware: "NVIDIA A100",
        scale: "3,360 GPUs",
        pct_peak: "36%",
        petaflops: "379.7",
    },
    Table1Row {
        study: "Narayanan et al.",
        framework: "Megatron-LM",
        model_size: "1000B",
        batch_size: "6.3M",
        hardware: "NVIDIA A100",
        scale: "3,072 GPUs",
        pct_peak: "52%",
        petaflops: "502.0",
    },
    Table1Row {
        study: "MegaScale",
        framework: "MegaScale",
        model_size: "175B",
        batch_size: "12.5M",
        hardware: "NVIDIA A100",
        scale: "12,288 GPUs",
        pct_peak: "55%",
        petaflops: "2166.3",
    },
    Table1Row {
        study: "Google",
        framework: "Cloud TPU Multislice",
        model_size: "32B",
        batch_size: "417M",
        hardware: "TPUv5e",
        scale: "55,094 TPUs",
        pct_peak: "44.67%",
        petaflops: "4480.0",
    },
];

/// Fig. 6 weak-scaling efficiencies quoted in the text.
pub const FRONTIER_EFFICIENCY_8K: f64 = 88.3;
pub const FRONTIER_EFFICIENCY_16K: f64 = 79.02;
pub const FRONTIER_EFFICIENCY_32K: f64 = 53.5;
pub const ALPS_EFFICIENCY_6144: f64 = 76.5;

/// Fig. 5: overlap gain for GPT-80B on 8,192 GCDs.
pub const FIG5_80B_OVERLAP_GAIN_PCT: f64 = 18.69;

/// Fig. 9 headline time-to-solution numbers (2T tokens).
pub const FIG9_80B_128GCD: &str = "50 months";
pub const FIG9_80B_8192GCD: &str = "25.5 days";
pub const FIG9_640B_512GCD: &str = "14 years";
pub const FIG9_640B_8192GCD: &str = "15 months";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_is_complete() {
        assert_eq!(TABLE3.len(), 15);
        assert_eq!(TABLE3.iter().filter(|r| r.machine == "Frontier").count(), 7);
        // Headline numbers present.
        assert!(TABLE3.iter().any(|r| (r.total_pflops - 1423.1).abs() < 0.1));
        assert!(TABLE3.iter().any(|r| (r.total_pflops - 1381.0).abs() < 0.1));
        assert!(TABLE3.iter().any(|r| (r.total_pflops - 620.1).abs() < 0.1));
    }

    #[test]
    fn table1_prior_rows() {
        assert_eq!(TABLE1_PRIOR.len(), 8);
    }
}
