//! Closed-loop serving benchmark backing the CI `serve` gate.
//!
//! Pushes a fixed number of simulated client requests through the
//! continuous-batching [`axonn_serve::ServeEngine`] with the
//! [`axonn_serve::load`] generator and reports wall-clock TTFT and
//! per-request decode-throughput percentiles. The CI job compares the
//! medians against a committed baseline
//! (`results/bench_serve_baseline.json`) and fails when either regresses
//! by more than the threshold.

use axonn_lm::{Gpt, GptModelConfig};
use axonn_serve::{run_load, LoadConfig, Sampling, ServeConfig, ServeEngine};
use axonn_trace::LiveRegistry;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Model and traffic shape for the serving benchmark. The model is an
/// untrained toy GPT — the scheduler and decode math cost the same
/// whether the weights are trained, and greedy decode is deterministic
/// either way.
pub struct ServeBenchConfig {
    pub model: GptModelConfig,
    pub engine: ServeConfig,
    pub load: LoadConfig,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            model: GptModelConfig {
                vocab: 64,
                seq_len: 32,
                dim: 32,
                n_heads: 4,
                n_layers: 2,
                seed: 17,
            },
            engine: ServeConfig {
                max_queue: 64,
                max_active: 8,
                max_batch_tokens: 64,
                sampling: Sampling::Greedy,
                seed: 0,
            },
            load: LoadConfig {
                clients: 16,
                total_requests: 1000,
                mean_think_steps: 1.5,
                prompt_len: (4, 12),
                max_new_tokens: (4, 12),
                deadline_steps: None,
                seed: 7,
                max_steps: 5_000_000,
            },
        }
    }
}

/// One serving-benchmark run, as written to `results/BENCH_serve.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeBenchReport {
    /// Requests pushed through the scheduler to completion.
    pub completed: usize,
    pub evicted: usize,
    /// Overload rejections absorbed by client retry.
    pub rejected_retries: usize,
    pub engine_steps: u64,
    pub wall_s: f64,
    pub total_tokens: u64,
    /// Wall-clock time-to-first-token percentiles, milliseconds.
    pub ttft_p50_ms: f64,
    pub ttft_p99_ms: f64,
    /// Per-request decode throughput percentiles, tokens/second.
    pub tokens_per_s_p50: f64,
    pub tokens_per_s_p99: f64,
    /// Completed tokens over the whole run.
    pub aggregate_tokens_per_s: f64,
    pub clients: usize,
    pub max_active: usize,
}

/// Artificial slowdown multiplier for gate self-tests
/// (`AXONN_BENCH_SLOWDOWN`, same hook as `bench_step`): latencies are
/// scaled up, throughputs down.
fn slowdown() -> f64 {
    std::env::var("AXONN_BENCH_SLOWDOWN")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(1.0)
}

/// Run the closed-loop benchmark.
pub fn run_serve_bench(cfg: &ServeBenchConfig) -> ServeBenchReport {
    let model = Arc::new(Gpt::new(cfg.model.clone()));
    let registry = LiveRegistry::new_enabled(true);
    let mut engine = ServeEngine::new(model, cfg.engine.clone(), &registry);
    let out = run_load(&mut engine, &cfg.load);
    assert_eq!(
        out.completed + out.evicted,
        cfg.load.total_requests,
        "load run did not resolve every request"
    );
    let scale = slowdown();
    ServeBenchReport {
        completed: out.completed,
        evicted: out.evicted,
        rejected_retries: out.rejected,
        engine_steps: out.steps,
        wall_s: out.wall_s * scale,
        total_tokens: out.total_tokens,
        ttft_p50_ms: out.ttft_p50_s * 1e3 * scale,
        ttft_p99_ms: out.ttft_p99_s * 1e3 * scale,
        tokens_per_s_p50: out.tokens_per_s_p50 / scale,
        tokens_per_s_p99: out.tokens_per_s_p99 / scale,
        aggregate_tokens_per_s: out.aggregate_tokens_per_s / scale,
        clients: cfg.load.clients,
        max_active: cfg.engine.max_active,
    }
}

/// Outcome of comparing a fresh serving report against the baseline.
#[derive(Debug, Clone, Serialize)]
pub struct ServeGateVerdict {
    /// Relative change of median TTFT (`0.2` = 20% slower).
    pub ttft_delta: f64,
    /// Relative *drop* of median per-request throughput
    /// (`0.2` = 20% slower decode).
    pub rate_delta: f64,
    pub threshold: f64,
    /// `true` when either delta exceeds the threshold.
    pub regressed: bool,
}

/// Gate on both medians: TTFT must not rise and per-request decode
/// throughput must not fall by more than `threshold`.
pub fn compare_serve(
    current: &ServeBenchReport,
    baseline: &ServeBenchReport,
    threshold: f64,
) -> ServeGateVerdict {
    let ttft_delta = if baseline.ttft_p50_ms > 0.0 {
        (current.ttft_p50_ms - baseline.ttft_p50_ms) / baseline.ttft_p50_ms
    } else {
        0.0
    };
    // Throughput gates on the *drop*: positive when current is slower.
    let rate_delta = if baseline.tokens_per_s_p50 > 0.0 {
        (baseline.tokens_per_s_p50 - current.tokens_per_s_p50) / baseline.tokens_per_s_p50
    } else {
        0.0
    };
    ServeGateVerdict {
        ttft_delta,
        rate_delta,
        threshold,
        regressed: ttft_delta > threshold || rate_delta > threshold,
    }
}

/// Load a previously emitted serving report.
pub fn load_serve_report(path: &std::path::Path) -> Result<ServeBenchReport, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ttft_ms: f64, rate: f64) -> ServeBenchReport {
        ServeBenchReport {
            completed: 100,
            evicted: 0,
            rejected_retries: 0,
            engine_steps: 500,
            wall_s: 1.0,
            total_tokens: 800,
            ttft_p50_ms: ttft_ms,
            ttft_p99_ms: ttft_ms * 3.0,
            tokens_per_s_p50: rate,
            tokens_per_s_p99: rate * 2.0,
            aggregate_tokens_per_s: rate * 8.0,
            clients: 16,
            max_active: 8,
        }
    }

    #[test]
    fn gate_trips_on_ttft_or_throughput_regression() {
        let base = report(2.0, 1000.0);
        assert!(!compare_serve(&report(2.2, 1000.0), &base, 0.2).regressed);
        assert!(compare_serve(&report(2.5, 1000.0), &base, 0.2).regressed);
        assert!(compare_serve(&report(2.0, 700.0), &base, 0.2).regressed);
        assert!(!compare_serve(&report(1.5, 1200.0), &base, 0.2).regressed);
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report(1.25, 512.0);
        let text = serde_json::to_string(&r).unwrap();
        let back: ServeBenchReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back.ttft_p50_ms, r.ttft_p50_ms);
        assert_eq!(back.completed, r.completed);
    }

    #[test]
    fn tiny_serve_bench_resolves_all_requests() {
        let mut cfg = ServeBenchConfig::default();
        cfg.load.total_requests = 40;
        cfg.load.clients = 4;
        let r = run_serve_bench(&cfg);
        assert_eq!(r.completed, 40);
        assert!(r.ttft_p50_ms > 0.0 && r.ttft_p99_ms >= r.ttft_p50_ms);
        assert!(r.tokens_per_s_p50 > 0.0);
        assert!(r.total_tokens >= 40 * 4);
    }

    #[test]
    fn slowdown_hook_scales_the_gate_metrics() {
        let mut cfg = ServeBenchConfig::default();
        cfg.load.total_requests = 20;
        cfg.load.clients = 2;
        std::env::set_var("AXONN_BENCH_SLOWDOWN", "4.0");
        let slow = run_serve_bench(&cfg);
        std::env::remove_var("AXONN_BENCH_SLOWDOWN");
        let fast = run_serve_bench(&cfg);
        assert!(
            slow.ttft_p50_ms > fast.ttft_p50_ms * 2.0,
            "slowdown hook must inflate TTFT: {} vs {}",
            slow.ttft_p50_ms,
            fast.ttft_p50_ms
        );
    }
}
