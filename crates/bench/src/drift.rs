//! Perfmodel drift report: measured collective latencies vs. the ring
//! model's Eq. 1–5 predictions, bucketed by message size.
//!
//! ROADMAP item 3 asks for the estimator to be validated against real
//! counters. This module produces the falsifiable artifact: it runs the
//! actual thread-backed collectives at several message sizes, takes
//! wall-clock medians, calibrates an effective bandwidth `β̂` from the
//! largest all-reduce (the bandwidth-dominated regime), then predicts
//! every other (op, size) point with `RingCostModel` under that `β̂`.
//! The measured/predicted ratio per point is the drift — near 1.0 in
//! the bandwidth regime, systematically above 1.0 at small sizes where
//! the α latency term (Assumption-3 sets it to zero) dominates reality.
//!
//! The report is written as `results/DRIFT_perfmodel.json` by
//! `bench_step`.

use axonn_collectives::{
    AgAlgo, AlgoPolicy, ArAlgo, CollectiveKind, ProcessGroup, RingCostModel, RsAlgo,
};
use axonn_exec::run_spmd;
use axonn_trace::{Histogram, SECONDS_BOUNDS};
use serde::{Serialize, Value};
use std::time::Instant;

/// Configuration of the drift sweep.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// World size (ring group spans all ranks).
    pub world: usize,
    /// Per-rank element counts to sweep (f32 elements).
    pub elems: Vec<usize>,
    /// Timed iterations per (op, size) point.
    pub iters: usize,
    /// Warmup iterations per point (discarded).
    pub warmup: usize,
}

impl Default for DriftConfig {
    fn default() -> DriftConfig {
        DriftConfig {
            world: 4,
            elems: vec![1 << 10, 1 << 14, 1 << 18, 1 << 20],
            iters: 7,
            warmup: 2,
        }
    }
}

/// One measured-vs-predicted point.
#[derive(Debug, Clone)]
pub struct DriftEntry {
    /// Collective name (`all_gather`, `reduce_scatter`, `all_reduce`).
    pub op: &'static str,
    /// Algorithm the runtime's [`AlgoPolicy`] selects at this size
    /// (`ring`, `rh`, `rd`, `rhd`, `tree`) — the prediction is priced
    /// with the same algorithm's cost curve.
    pub algo: &'static str,
    /// Per-rank input elements.
    pub elems: usize,
    /// Bytes as charged to the cost model (the `n` of Eq. 1–5).
    pub bytes: u64,
    /// Group size `g`.
    pub group: usize,
    /// Median measured wall seconds.
    pub measured_s: f64,
    /// Eq. 1–5 prediction under the calibrated bandwidth.
    pub predicted_s: f64,
    /// measured / predicted (> 1 means the model is optimistic).
    pub ratio: f64,
}

impl Serialize for DriftEntry {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("op".into(), self.op.serialize()),
            ("algo".into(), self.algo.serialize()),
            ("elems".into(), self.elems.serialize()),
            ("bytes".into(), self.bytes.serialize()),
            ("group".into(), self.group.serialize()),
            ("measured_s".into(), self.measured_s.serialize()),
            ("predicted_s".into(), self.predicted_s.serialize()),
            ("ratio".into(), self.ratio.serialize()),
        ])
    }
}

/// The full drift report.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// World size the sweep ran on.
    pub world: usize,
    /// Effective link bandwidth (bytes/s) calibrated from the largest
    /// all-reduce point.
    pub bandwidth_estimate: f64,
    /// Every (op, size) point.
    pub entries: Vec<DriftEntry>,
    /// Per-op measured-latency histograms over the standard seconds
    /// buckets — the "per-collective measured latency histogram" the
    /// live plane also publishes, here in committed-artifact form.
    pub latency_hists: Vec<(String, Histogram)>,
}

impl Serialize for DriftReport {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("world".into(), self.world.serialize()),
            (
                "bandwidth_estimate".into(),
                self.bandwidth_estimate.serialize(),
            ),
            ("entries".into(), self.entries.serialize()),
            (
                "latency_hists".into(),
                Value::Object(
                    self.latency_hists
                        .iter()
                        .map(|(k, v)| (k.clone(), v.serialize()))
                        .collect(),
                ),
            ),
        ])
    }
}

fn median(mut samples: Vec<f64>) -> f64 {
    assert!(!samples.is_empty(), "no samples");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        0.5 * (samples[n / 2 - 1] + samples[n / 2])
    }
}

/// Cost-model `bytes` for each measured op, matching exactly what the
/// runtime charges (`charge_blocking` call sites): all-gather is billed
/// on the *gathered* buffer, the others on the input buffer.
fn model_bytes(op: &'static str, elems: usize, g: usize) -> u64 {
    match op {
        "all_gather" => (elems * g * 4) as u64,
        _ => (elems * 4) as u64,
    }
}

/// The collective kind the runtime actually executes at this size under
/// `policy` — predicting a tree-selected point with the ring curve would
/// report spurious drift. `elems` is the per-rank input (the contributed
/// shard for all-gather, the full buffer otherwise), matching the
/// runtime's selection inputs.
fn model_kind(
    op: &'static str,
    elems: usize,
    g: usize,
    policy: &AlgoPolicy,
) -> (CollectiveKind, &'static str) {
    match op {
        "all_gather" => match policy.all_gather(elems, g) {
            AgAlgo::Ring => (CollectiveKind::AllGather, "ring"),
            AgAlgo::Rd => (CollectiveKind::AllGatherRecursiveDoubling, "rd"),
        },
        "reduce_scatter" => match policy.reduce_scatter(elems, g) {
            RsAlgo::Ring => (CollectiveKind::ReduceScatter, "ring"),
            RsAlgo::Rh => (CollectiveKind::ReduceScatterRecursiveHalving, "rh"),
        },
        "all_reduce" => match policy.all_reduce(elems, g) {
            ArAlgo::Ring => (CollectiveKind::AllReduce, "ring"),
            ArAlgo::Rhd => (CollectiveKind::AllReduceRecursiveHalvingDoubling, "rhd"),
            ArAlgo::Tree => (CollectiveKind::AllReduceTree, "tree"),
        },
        other => unreachable!("unknown drift op {other}"),
    }
}

const OPS: [&str; 3] = ["all_gather", "reduce_scatter", "all_reduce"];

/// Run the sweep and assemble the report.
pub fn run_drift(cfg: &DriftConfig) -> DriftReport {
    let g = cfg.world;
    let iters = cfg.iters;
    let warmup = cfg.warmup;
    // (op, elems) -> median measured seconds.
    let mut measured: Vec<(&'static str, usize, f64)> = Vec::new();
    for &elems in &cfg.elems {
        // One world per size; all three ops measured in it, each
        // barrier-bracketed so ranks start together and a slow rank
        // cannot smear into the next op's timing.
        let timings = run_spmd(g, move |c| {
            let group = ProcessGroup::new((0..g).collect());
            let mut out = Vec::new();
            for op in OPS {
                let mut samples = Vec::new();
                for i in 0..warmup + iters {
                    c.barrier(&group);
                    let t0 = Instant::now();
                    match op {
                        "all_gather" => {
                            let shard = vec![1.0f32; elems];
                            let _ = c.all_gather(&group, &shard);
                        }
                        "reduce_scatter" => {
                            let buf = vec![1.0f32; elems];
                            let _ = c.reduce_scatter(&group, &buf);
                        }
                        _ => {
                            let mut buf = vec![1.0f32; elems];
                            c.all_reduce(&group, &mut buf);
                        }
                    }
                    let dt = t0.elapsed().as_secs_f64();
                    if i >= warmup {
                        samples.push(dt);
                    }
                }
                out.push(median(samples));
            }
            out
        });
        // Per (op, size): the slowest rank's median — a collective is
        // only done when its last rank is done.
        for (k, op) in OPS.iter().enumerate() {
            let worst = timings.iter().map(|r| r[k]).fold(f64::MIN, f64::max);
            measured.push((op, elems, worst));
        }
    }

    // Calibrate β̂ from the largest all-reduce: t = 2(g-1)/g · n/β.
    let (_, cal_elems, cal_t) = *measured
        .iter()
        .filter(|(op, _, _)| *op == "all_reduce")
        .max_by_key(|(_, elems, _)| *elems)
        .expect("all_reduce measured");
    let gf = g as f64;
    let cal_bytes = model_bytes("all_reduce", cal_elems, g) as f64;
    // The ring and halving/doubling all-reduces move the same
    // 2(g-1)/g · n bytes, so this calibration holds whichever of the two
    // the policy selects at the largest size.
    let bandwidth = (2.0 * (gf - 1.0) / gf * cal_bytes) / cal_t.max(1e-12);
    let model = RingCostModel::new(1e12, bandwidth);
    let policy = AlgoPolicy::from_env();

    let mut hists: Vec<(String, Histogram)> = OPS
        .iter()
        .map(|op| {
            (
                format!("collective.{op}.measured_seconds_hist"),
                Histogram::new(SECONDS_BOUNDS.to_vec()),
            )
        })
        .collect();
    let entries = measured
        .into_iter()
        .map(|(op, elems, t)| {
            let bytes = model_bytes(op, elems, g);
            let (kind, algo) = model_kind(op, elems, g, &policy);
            let predicted =
                axonn_collectives::CostModel::collective_seconds(&model, kind, g, bytes as f64);
            let hist_idx = OPS.iter().position(|o| *o == op).expect("known op");
            hists[hist_idx].1.observe(t);
            DriftEntry {
                op,
                algo,
                elems,
                bytes,
                group: g,
                measured_s: t,
                predicted_s: predicted,
                ratio: if predicted > 0.0 {
                    t / predicted
                } else {
                    f64::NAN
                },
            }
        })
        .collect();

    DriftReport {
        world: g,
        bandwidth_estimate: bandwidth,
        entries,
        latency_hists: hists,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_report_shape() {
        // A tiny sweep: structure and calibration sanity, not accuracy.
        let cfg = DriftConfig {
            world: 2,
            elems: vec![256, 4096],
            iters: 3,
            warmup: 1,
        };
        let report = run_drift(&cfg);
        assert_eq!(report.entries.len(), 6); // 3 ops × 2 sizes
        assert!(report.bandwidth_estimate > 0.0);
        for e in &report.entries {
            assert!(e.measured_s > 0.0, "{e:?}");
            assert!(e.predicted_s > 0.0, "{e:?}");
        }
        // Calibration makes the largest all-reduce ratio exactly 1.
        let cal = report
            .entries
            .iter()
            .filter(|e| e.op == "all_reduce")
            .max_by_key(|e| e.elems)
            .unwrap();
        assert!((cal.ratio - 1.0).abs() < 1e-9, "ratio {}", cal.ratio);
        // Histograms saw every point.
        let total: u64 = report.latency_hists.iter().map(|(_, h)| h.count()).sum();
        assert_eq!(total, 6);
        // Serializes to JSON.
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("bandwidth_estimate"));
    }
}
