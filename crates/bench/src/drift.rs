//! Perfmodel drift report: measured collective latencies vs. the ring
//! model's Eq. 1–5 predictions, bucketed by message size.
//!
//! ROADMAP item 3 asks for the estimator to be validated against real
//! counters. This module produces the falsifiable artifact: it runs the
//! actual thread-backed collectives at several message sizes, takes
//! wall-clock medians, calibrates an effective bandwidth `β̂` from the
//! largest all-reduce (the bandwidth-dominated regime), then predicts
//! every other (op, size) point with `RingCostModel` under that `β̂`.
//! The measured/predicted ratio per point is the drift — near 1.0 in
//! the bandwidth regime, systematically above 1.0 at small sizes where
//! the α latency term (Assumption-3 sets it to zero) dominates reality.
//!
//! The report is written as `results/DRIFT_perfmodel.json` by
//! `bench_step`.
//!
//! The same falsifiability discipline now covers the compute terms: the
//! GEMM drift sweep times this host's real `axonn-tensor` kernels across
//! modes and shapes, fits a [`CalibratedGemm`] saturating-rate curve to
//! the NN points, and reports the measured/predicted ratio of every
//! other point — plus a kernel-tier table (naive vs blocked vs
//! blocked+SIMD GF/s) that documents what the blocked rewrite buys.

use axonn_cluster::{CalibratedGemm, GemmMode, GemmSample};
use axonn_collectives::{
    AgAlgo, AlgoPolicy, ArAlgo, CollectiveKind, ProcessGroup, RingCostModel, RsAlgo,
};
use axonn_exec::run_spmd;
use axonn_tensor::{
    gemm_into, gemm_into_naive, gemm_into_stats, gemm_into_with, BlockSizes, MatMode, Matrix,
};
use axonn_trace::{Histogram, SECONDS_BOUNDS};
use serde::{Serialize, Value};
use std::time::Instant;

/// Configuration of the drift sweep.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// World size (ring group spans all ranks).
    pub world: usize,
    /// Per-rank element counts to sweep (f32 elements).
    pub elems: Vec<usize>,
    /// Timed iterations per (op, size) point.
    pub iters: usize,
    /// Warmup iterations per point (discarded).
    pub warmup: usize,
}

impl Default for DriftConfig {
    fn default() -> DriftConfig {
        DriftConfig {
            world: 4,
            elems: vec![1 << 10, 1 << 14, 1 << 18, 1 << 20],
            iters: 7,
            warmup: 2,
        }
    }
}

/// One measured-vs-predicted point.
#[derive(Debug, Clone)]
pub struct DriftEntry {
    /// Collective name (`all_gather`, `reduce_scatter`, `all_reduce`).
    pub op: &'static str,
    /// Algorithm the runtime's [`AlgoPolicy`] selects at this size
    /// (`ring`, `rh`, `rd`, `rhd`, `tree`) — the prediction is priced
    /// with the same algorithm's cost curve.
    pub algo: &'static str,
    /// Per-rank input elements.
    pub elems: usize,
    /// Bytes as charged to the cost model (the `n` of Eq. 1–5).
    pub bytes: u64,
    /// Group size `g`.
    pub group: usize,
    /// Median measured wall seconds.
    pub measured_s: f64,
    /// Eq. 1–5 prediction under the calibrated bandwidth.
    pub predicted_s: f64,
    /// measured / predicted (> 1 means the model is optimistic).
    pub ratio: f64,
}

impl Serialize for DriftEntry {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("op".into(), self.op.serialize()),
            ("algo".into(), self.algo.serialize()),
            ("elems".into(), self.elems.serialize()),
            ("bytes".into(), self.bytes.serialize()),
            ("group".into(), self.group.serialize()),
            ("measured_s".into(), self.measured_s.serialize()),
            ("predicted_s".into(), self.predicted_s.serialize()),
            ("ratio".into(), self.ratio.serialize()),
        ])
    }
}

/// The full drift report.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// World size the sweep ran on.
    pub world: usize,
    /// Effective link bandwidth (bytes/s) calibrated from the largest
    /// all-reduce point.
    pub bandwidth_estimate: f64,
    /// Every (op, size) point.
    pub entries: Vec<DriftEntry>,
    /// Per-op measured-latency histograms over the standard seconds
    /// buckets — the "per-collective measured latency histogram" the
    /// live plane also publishes, here in committed-artifact form.
    pub latency_hists: Vec<(String, Histogram)>,
    /// Compute-side drift: measured GEMM kernel rates vs the fitted
    /// [`CalibratedGemm`] curve. `None` until the caller runs
    /// [`run_gemm_drift`] and attaches it (the collective sweep and the
    /// GEMM sweep are independently configurable).
    pub gemm: Option<GemmDriftReport>,
}

impl Serialize for DriftReport {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("world".into(), self.world.serialize()),
            (
                "bandwidth_estimate".into(),
                self.bandwidth_estimate.serialize(),
            ),
            ("entries".into(), self.entries.serialize()),
            (
                "latency_hists".into(),
                Value::Object(
                    self.latency_hists
                        .iter()
                        .map(|(k, v)| (k.clone(), v.serialize()))
                        .collect(),
                ),
            ),
            ("gemm".into(), self.gemm.serialize()),
        ])
    }
}

fn median(mut samples: Vec<f64>) -> f64 {
    assert!(!samples.is_empty(), "no samples");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        0.5 * (samples[n / 2 - 1] + samples[n / 2])
    }
}

/// Cost-model `bytes` for each measured op, matching exactly what the
/// runtime charges (`charge_blocking` call sites): all-gather is billed
/// on the *gathered* buffer, the others on the input buffer.
fn model_bytes(op: &'static str, elems: usize, g: usize) -> u64 {
    match op {
        "all_gather" => (elems * g * 4) as u64,
        _ => (elems * 4) as u64,
    }
}

/// The collective kind the runtime actually executes at this size under
/// `policy` — predicting a tree-selected point with the ring curve would
/// report spurious drift. `elems` is the per-rank input (the contributed
/// shard for all-gather, the full buffer otherwise), matching the
/// runtime's selection inputs.
fn model_kind(
    op: &'static str,
    elems: usize,
    g: usize,
    policy: &AlgoPolicy,
) -> (CollectiveKind, &'static str) {
    match op {
        "all_gather" => match policy.all_gather(elems, g) {
            AgAlgo::Ring => (CollectiveKind::AllGather, "ring"),
            AgAlgo::Rd => (CollectiveKind::AllGatherRecursiveDoubling, "rd"),
        },
        "reduce_scatter" => match policy.reduce_scatter(elems, g) {
            RsAlgo::Ring => (CollectiveKind::ReduceScatter, "ring"),
            RsAlgo::Rh => (CollectiveKind::ReduceScatterRecursiveHalving, "rh"),
        },
        "all_reduce" => match policy.all_reduce(elems, g) {
            ArAlgo::Ring => (CollectiveKind::AllReduce, "ring"),
            ArAlgo::Rhd => (CollectiveKind::AllReduceRecursiveHalvingDoubling, "rhd"),
            ArAlgo::Tree => (CollectiveKind::AllReduceTree, "tree"),
        },
        other => unreachable!("unknown drift op {other}"),
    }
}

const OPS: [&str; 3] = ["all_gather", "reduce_scatter", "all_reduce"];

/// Run the sweep and assemble the report.
pub fn run_drift(cfg: &DriftConfig) -> DriftReport {
    let g = cfg.world;
    let iters = cfg.iters;
    let warmup = cfg.warmup;
    // (op, elems) -> median measured seconds.
    let mut measured: Vec<(&'static str, usize, f64)> = Vec::new();
    for &elems in &cfg.elems {
        // One world per size; all three ops measured in it, each
        // barrier-bracketed so ranks start together and a slow rank
        // cannot smear into the next op's timing.
        let timings = run_spmd(g, move |c| {
            let group = ProcessGroup::new((0..g).collect());
            let mut out = Vec::new();
            for op in OPS {
                let mut samples = Vec::new();
                for i in 0..warmup + iters {
                    c.barrier(&group);
                    let t0 = Instant::now();
                    match op {
                        "all_gather" => {
                            let shard = vec![1.0f32; elems];
                            let _ = c.all_gather(&group, &shard);
                        }
                        "reduce_scatter" => {
                            let buf = vec![1.0f32; elems];
                            let _ = c.reduce_scatter(&group, &buf);
                        }
                        _ => {
                            let mut buf = vec![1.0f32; elems];
                            c.all_reduce(&group, &mut buf);
                        }
                    }
                    let dt = t0.elapsed().as_secs_f64();
                    if i >= warmup {
                        samples.push(dt);
                    }
                }
                out.push(median(samples));
            }
            out
        });
        // Per (op, size): the slowest rank's median — a collective is
        // only done when its last rank is done.
        for (k, op) in OPS.iter().enumerate() {
            let worst = timings.iter().map(|r| r[k]).fold(f64::MIN, f64::max);
            measured.push((op, elems, worst));
        }
    }

    // Calibrate β̂ from the largest all-reduce: t = 2(g-1)/g · n/β.
    let (_, cal_elems, cal_t) = *measured
        .iter()
        .filter(|(op, _, _)| *op == "all_reduce")
        .max_by_key(|(_, elems, _)| *elems)
        .expect("all_reduce measured");
    let gf = g as f64;
    let cal_bytes = model_bytes("all_reduce", cal_elems, g) as f64;
    // The ring and halving/doubling all-reduces move the same
    // 2(g-1)/g · n bytes, so this calibration holds whichever of the two
    // the policy selects at the largest size.
    let bandwidth = (2.0 * (gf - 1.0) / gf * cal_bytes) / cal_t.max(1e-12);
    let model = RingCostModel::new(1e12, bandwidth);
    let policy = AlgoPolicy::from_env();

    let mut hists: Vec<(String, Histogram)> = OPS
        .iter()
        .map(|op| {
            (
                format!("collective.{op}.measured_seconds_hist"),
                Histogram::new(SECONDS_BOUNDS.to_vec()),
            )
        })
        .collect();
    let entries = measured
        .into_iter()
        .map(|(op, elems, t)| {
            let bytes = model_bytes(op, elems, g);
            let (kind, algo) = model_kind(op, elems, g, &policy);
            let predicted =
                axonn_collectives::CostModel::collective_seconds(&model, kind, g, bytes as f64);
            let hist_idx = OPS.iter().position(|o| *o == op).expect("known op");
            hists[hist_idx].1.observe(t);
            DriftEntry {
                op,
                algo,
                elems,
                bytes,
                group: g,
                measured_s: t,
                predicted_s: predicted,
                ratio: if predicted > 0.0 {
                    t / predicted
                } else {
                    f64::NAN
                },
            }
        })
        .collect();

    DriftReport {
        world: g,
        bandwidth_estimate: bandwidth,
        entries,
        latency_hists: hists,
        gemm: None,
    }
}

// ---------------------------------------------------------------------
// GEMM drift: measured kernel rates vs the calibrated compute model.
// ---------------------------------------------------------------------

/// Configuration of the GEMM drift sweep.
#[derive(Debug, Clone)]
pub struct GemmDriftConfig {
    /// `(m, k, n)` logical GEMM shapes, swept for every mode.
    pub shapes: Vec<(usize, usize, usize)>,
    /// Timed iterations per (mode, shape) point.
    pub iters: usize,
    /// Warmup iterations per point (discarded; also primes the
    /// thread-local pack buffers).
    pub warmup: usize,
}

impl Default for GemmDriftConfig {
    fn default() -> GemmDriftConfig {
        GemmDriftConfig {
            // Distinct smallest dimensions so the two-point NN fit has
            // leverage; big enough that the blocked kernel saturates.
            shapes: vec![(48, 48, 48), (128, 128, 128), (288, 288, 288)],
            iters: 5,
            warmup: 2,
        }
    }
}

/// One measured-vs-predicted GEMM point (the auto kernel: blocked, with
/// AVX2 when compiled in and available).
#[derive(Debug, Clone, Serialize)]
pub struct GemmDriftEntry {
    /// Mode label (`NN`, `NT`, `TN`).
    pub mode: &'static str,
    pub m: usize,
    pub k: usize,
    pub n: usize,
    /// Median measured wall seconds.
    pub measured_s: f64,
    /// Sustained throughput of the measured point, Gflop/s.
    pub measured_gflops: f64,
    /// Seconds the fitted [`CalibratedGemm`] predicts for this point.
    pub predicted_s: f64,
    /// measured / predicted (> 1 means the model is optimistic).
    pub ratio: f64,
}

/// Throughput of each kernel tier at one (mode, shape) point — the
/// naive loop nest, the blocked/packed scalar kernel, and the auto
/// kernel (blocked + AVX2 micro-kernel when available).
#[derive(Debug, Clone, Serialize)]
pub struct GemmTierEntry {
    pub mode: &'static str,
    pub m: usize,
    pub k: usize,
    pub n: usize,
    pub naive_gflops: f64,
    pub blocked_gflops: f64,
    pub auto_gflops: f64,
}

/// The GEMM drift report, written alongside the collective drift in
/// `results/DRIFT_perfmodel.json`.
#[derive(Debug, Clone, Serialize)]
pub struct GemmDriftReport {
    /// Fitted NN curve: asymptotic flop/s and half-saturation size.
    pub peak_flops: f64,
    pub half_sat: f64,
    /// Fitted per-mode throughput factors relative to the NN curve.
    pub nt_factor: f64,
    pub tn_factor: f64,
    /// Whether the AVX2 micro-kernels ran for the auto tier.
    pub simd_active: bool,
    /// Accepted measured/predicted band for the sweep points.
    pub tolerance_low: f64,
    pub tolerance_high: f64,
    pub entries: Vec<GemmDriftEntry>,
    pub tiers: Vec<GemmTierEntry>,
}

impl GemmDriftReport {
    /// `true` when every sweep point's ratio lies inside the tolerance
    /// band — the acceptance criterion the perf gate prints.
    pub fn all_within_tolerance(&self) -> bool {
        self.entries
            .iter()
            .all(|e| e.ratio >= self.tolerance_low && e.ratio <= self.tolerance_high)
    }
}

const GEMM_MODES: [(MatMode, GemmMode, &str); 3] = [
    (MatMode::NN, GemmMode::NN, "NN"),
    (MatMode::NT, GemmMode::NT, "NT"),
    (MatMode::TN, GemmMode::TN, "TN"),
];

/// Operand matrices for a logical `m×k×n` product in `mode` (C is
/// `m×n`, contraction `k`), seeded deterministically.
fn gemm_operands(mode: MatMode, m: usize, k: usize, n: usize) -> (Matrix, Matrix) {
    let seed_a = (m * 31 + k) as u64;
    let seed_b = (k * 31 + n) as u64 + 1;
    match mode {
        MatMode::NN => (
            Matrix::random(m, k, 1.0, seed_a),
            Matrix::random(k, n, 1.0, seed_b),
        ),
        MatMode::NT => (
            Matrix::random(m, k, 1.0, seed_a),
            Matrix::random(n, k, 1.0, seed_b),
        ),
        MatMode::TN => (
            Matrix::random(k, m, 1.0, seed_a),
            Matrix::random(k, n, 1.0, seed_b),
        ),
    }
}

/// Median wall seconds of `f` over `iters` timed runs after `warmup`.
fn time_kernel<F: FnMut()>(iters: usize, warmup: usize, mut f: F) -> f64 {
    let mut samples = Vec::with_capacity(iters);
    for i in 0..warmup + iters {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64();
        if i >= warmup {
            samples.push(dt);
        }
    }
    median(samples)
}

/// Run the GEMM sweep, fit the compute model, and assemble the report.
/// Returns `None` when the configured shapes cannot pin the NN curve
/// (fewer than two distinct smallest dimensions).
pub fn run_gemm_drift(cfg: &GemmDriftConfig) -> Option<GemmDriftReport> {
    let mut samples: Vec<GemmSample> = Vec::new();
    let mut points: Vec<(&'static str, GemmMode, usize, usize, usize, f64)> = Vec::new();
    let mut tiers: Vec<GemmTierEntry> = Vec::new();
    let mut simd_active = false;

    for &(mat_mode, gemm_mode, label) in &GEMM_MODES {
        for &(m, k, n) in &cfg.shapes {
            let (a, b) = gemm_operands(mat_mode, m, k, n);
            let mut c = Matrix::zeros(m, n);
            let flops = 2.0 * m as f64 * k as f64 * n as f64;

            simd_active |= gemm_into_stats(mat_mode, &a, &b, &mut c).simd;
            let auto_s = time_kernel(cfg.iters, cfg.warmup, || {
                gemm_into(mat_mode, &a, &b, &mut c);
            });
            let naive_s = time_kernel(cfg.iters, cfg.warmup, || {
                gemm_into_naive(mat_mode, &a, &b, &mut c);
            });
            let blocked_s = time_kernel(cfg.iters, cfg.warmup, || {
                let _ = gemm_into_with(mat_mode, &a, &b, &mut c, BlockSizes::default(), true);
            });

            let rate = flops / auto_s.max(1e-12);
            samples.push(GemmSample {
                mode: gemm_mode,
                dim: m.min(k).min(n),
                rate,
            });
            points.push((label, gemm_mode, m, k, n, auto_s));
            tiers.push(GemmTierEntry {
                mode: label,
                m,
                k,
                n,
                naive_gflops: flops / naive_s.max(1e-12) / 1e9,
                blocked_gflops: flops / blocked_s.max(1e-12) / 1e9,
                auto_gflops: rate / 1e9,
            });
        }
    }

    let cal = CalibratedGemm::fit(&samples)?;
    let entries = points
        .into_iter()
        .map(|(mode, gemm_mode, m, k, n, measured_s)| {
            let flops = 2.0 * m as f64 * k as f64 * n as f64;
            let predicted_s = cal.seconds(m, k, n, gemm_mode);
            GemmDriftEntry {
                mode,
                m,
                k,
                n,
                measured_s,
                measured_gflops: flops / measured_s.max(1e-12) / 1e9,
                predicted_s,
                ratio: if predicted_s > 0.0 {
                    measured_s / predicted_s
                } else {
                    f64::NAN
                },
            }
        })
        .collect();
    Some(GemmDriftReport {
        peak_flops: cal.peak_flops,
        half_sat: cal.half_sat,
        nt_factor: cal.nt_factor,
        tn_factor: cal.tn_factor,
        simd_active,
        tolerance_low: 0.5,
        tolerance_high: 2.0,
        entries,
        tiers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_report_shape() {
        // A tiny sweep: structure and calibration sanity, not accuracy.
        let cfg = DriftConfig {
            world: 2,
            elems: vec![256, 4096],
            iters: 3,
            warmup: 1,
        };
        let report = run_drift(&cfg);
        assert_eq!(report.entries.len(), 6); // 3 ops × 2 sizes
        assert!(report.bandwidth_estimate > 0.0);
        for e in &report.entries {
            assert!(e.measured_s > 0.0, "{e:?}");
            assert!(e.predicted_s > 0.0, "{e:?}");
        }
        // Calibration makes the largest all-reduce ratio exactly 1.
        let cal = report
            .entries
            .iter()
            .filter(|e| e.op == "all_reduce")
            .max_by_key(|e| e.elems)
            .unwrap();
        assert!((cal.ratio - 1.0).abs() < 1e-9, "ratio {}", cal.ratio);
        // Histograms saw every point.
        let total: u64 = report.latency_hists.iter().map(|(_, h)| h.count()).sum();
        assert_eq!(total, 6);
        // Serializes to JSON.
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("bandwidth_estimate"));
    }

    #[test]
    fn gemm_drift_report_shape() {
        let cfg = GemmDriftConfig {
            shapes: vec![(24, 24, 24), (96, 96, 96)],
            iters: 3,
            warmup: 1,
        };
        let report = run_gemm_drift(&cfg).expect("two distinct NN dims");
        assert_eq!(report.entries.len(), 6); // 3 modes × 2 shapes
        assert_eq!(report.tiers.len(), 6);
        assert!(report.peak_flops > 0.0);
        for e in &report.entries {
            assert!(e.measured_s > 0.0, "{e:?}");
            assert!(e.predicted_s > 0.0, "{e:?}");
            assert!(e.measured_gflops > 0.0, "{e:?}");
        }
        // The fit passes exactly through the largest point of each mode,
        // so at least those three ratios are 1 and inside any band.
        let largest_nn = report
            .entries
            .iter()
            .filter(|e| e.mode == "NN")
            .max_by_key(|e| e.m)
            .unwrap();
        assert!(
            (largest_nn.ratio - 1.0).abs() < 1e-9,
            "calibration point ratio {}",
            largest_nn.ratio
        );
        for t in &report.tiers {
            assert!(t.naive_gflops > 0.0 && t.blocked_gflops > 0.0 && t.auto_gflops > 0.0);
        }
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("tn_factor") && json.contains("naive_gflops"));
    }

    #[test]
    fn gemm_drift_needs_two_distinct_sizes() {
        let cfg = GemmDriftConfig {
            shapes: vec![(32, 32, 32)],
            iters: 1,
            warmup: 0,
        };
        assert!(run_gemm_drift(&cfg).is_none());
    }
}
