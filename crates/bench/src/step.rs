//! Wall-clock training-step benchmark backing the CI perf-regression
//! gate.
//!
//! Unlike the figure binaries (which report *virtual* seconds from the
//! cost model), this module measures real elapsed time of
//! `Network4d::train_step` on a live thread world, plus a pooled
//! all-reduce microbenchmark, and compares the medians against a
//! committed baseline (`results/bench_step_baseline.json`). The CI
//! `perf-gate` job fails the build when the median step time regresses
//! by more than the threshold.

use std::time::Instant;

use axonn_collectives::{PoolStats, ProcessGroup};
use axonn_core::{Activation, GradSyncMode, GridTopology, NetConfig, Network4d, OverlapConfig};
use axonn_exec::run_spmd;
use axonn_tensor::{gemm_into_stats, take_gemm_phase, MatMode, Matrix};
use serde::{Deserialize, Serialize};

/// Grid and workload for the gate benchmark. Small enough to finish in
/// seconds on a CI runner, large enough that the transport (pooled
/// all-gathers/all-reduces across the 2×1×2×1 grid) dominates noise.
pub struct StepBenchConfig {
    /// Grid shape `(gx, gy, gz, gd)`; world size is the product.
    pub grid: (usize, usize, usize, usize),
    /// Global feature sizes (`dims.len() - 1` layers).
    pub dims: Vec<usize>,
    /// Global batch rows.
    pub batch: usize,
    /// Timed iterations.
    pub iters: usize,
    /// Untimed warmup iterations (fills the buffer pool).
    pub warmup: usize,
    /// Element count for the all-reduce microbenchmark.
    pub allreduce_elems: usize,
    /// Gradient-sync schedule to benchmark: the bucketed ZeRO-1
    /// pipeline (default) or the serial per-tensor oracle — useful for
    /// measuring the pipeline's win on the same grid.
    pub grad_sync: GradSyncMode,
}

impl Default for StepBenchConfig {
    fn default() -> Self {
        StepBenchConfig {
            // gd = 2 so the gate also covers the data-parallel tail —
            // the bucketed gradient pipeline and ZeRO-1 sharded step.
            // Per-rank compute is identical to the old 2×1×2×1 grid
            // (same world size, same local batch rows).
            grid: (2, 1, 1, 2),
            // Large enough (~30 ms/step) that scheduler jitter amortizes;
            // a smaller step makes the gate median too noisy to compare
            // across runs.
            dims: vec![256, 512, 256],
            batch: 64,
            iters: 30,
            warmup: 5,
            allreduce_elems: 1 << 20,
            grad_sync: GradSyncMode::default(),
        }
    }
}

/// One benchmark run, as written to `results/BENCH_step_time.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StepBenchReport {
    /// Median wall time of one `train_step`, milliseconds.
    pub median_step_ms: f64,
    /// Fastest / slowest timed iteration, milliseconds.
    pub min_step_ms: f64,
    pub max_step_ms: f64,
    /// Median wall time of one pooled all-reduce of
    /// `allreduce_elems` f32s, milliseconds.
    pub median_allreduce_ms: f64,
    /// Median wall time of the ORS-drain + data-parallel gradient phase
    /// inside `train_step` (the bucketed pipeline, or the per-tensor
    /// oracle), milliseconds.
    pub median_grad_sync_ms: f64,
    /// Median wall time rank 0 spent inside GEMM kernels per step
    /// (the compute phase the blocked/packed rewrite attacks),
    /// milliseconds.
    pub median_compute_ms: f64,
    /// Gate statistics: median of the *fastest half* of iterations.
    /// The raw median absorbs scheduler contention spikes (slow-tail
    /// outliers on loaded runners); the fast-half median tracks the
    /// achievable step time and is what the CI gate compares.
    pub gate_step_ms: f64,
    pub gate_allreduce_ms: f64,
    pub gate_grad_sync_ms: f64,
    /// Fast-half medians of the per-step GEMM phase, total and split by
    /// transposition mode.
    pub gate_compute_ms: f64,
    pub gate_compute_nn_ms: f64,
    pub gate_compute_nt_ms: f64,
    pub gate_compute_tn_ms: f64,
    /// Pack-buffer traffic of one step on rank 0 (bytes written into the
    /// thread-local operand panels).
    pub packed_bytes_per_step: u64,
    /// Whether the AVX2 GEMM micro-kernels ran (the `simd` build on a
    /// machine that has AVX2).
    pub simd_active: bool,
    /// World size and iteration count the medians were taken over.
    pub world_size: usize,
    pub iters: usize,
    /// Transport buffer-pool counters over the whole run (warmup
    /// included): recycled checkouts vs fresh allocations.
    pub pool_hits: u64,
    pub pool_misses: u64,
    pub pool_alloc_bytes: u64,
}

/// What rank 0 returns from the benchmark world (the other ranks return
/// `None`).
struct RankTimings {
    step_ms: Vec<f64>,
    sync_ms: Vec<f64>,
    ar_ms: Vec<f64>,
    /// Per-iteration GEMM phase on rank 0: (total, NN, NT, TN) ms.
    compute_ms: Vec<(f64, f64, f64, f64)>,
    packed_bytes: u64,
    pool: PoolStats,
}

fn median(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty(), "no samples");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        0.5 * (samples[n / 2 - 1] + samples[n / 2])
    }
}

/// Median of the fastest half of the samples (sorts in place).
fn fast_half_median(samples: &mut [f64]) -> f64 {
    let _ = median(samples); // sorts
    let half = samples.len().div_ceil(2);
    median(&mut samples[..half].to_vec())
}

/// Artificial slowdown multiplier for gate self-tests: every measured
/// duration is scaled by `AXONN_BENCH_SLOWDOWN` (e.g. `2.0`). Lets CI
/// changes to the gate be exercised without a real regression.
fn slowdown() -> f64 {
    std::env::var("AXONN_BENCH_SLOWDOWN")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(1.0)
}

/// Run the benchmark: `warmup + iters` barrier-bracketed training steps
/// and an all-reduce microbench on a fresh world, timings taken on
/// rank 0.
pub fn run_step_bench(cfg: &StepBenchConfig) -> StepBenchReport {
    let (gx, gy, gz, gd) = cfg.grid;
    let world_size = gx * gy * gz * gd;
    let dims = cfg.dims.clone();
    let batch = cfg.batch;
    let iters = cfg.iters;
    let warmup = cfg.warmup;
    let ar_elems = cfg.allreduce_elems;
    let grad_sync = cfg.grad_sync;

    let results: Vec<Option<RankTimings>> = run_spmd(world_size, move |comm| {
        let rank = comm.rank();
        let grid = GridTopology::new(gx, gy, gz, gd, rank);
        let mut net = Network4d::with_config(
            comm.clone(),
            grid,
            &dims,
            Activation::Gelu,
            7,
            NetConfig {
                overlap: OverlapConfig::all(),
                grad_sync,
                ..NetConfig::default()
            },
        );
        let x = Matrix::random(batch, dims[0], 1.0, 11);
        let t = Matrix::random(batch, dims[dims.len() - 1], 1.0, 13);
        let world = ProcessGroup::new((0..world_size).collect());

        let mut step_ms = Vec::with_capacity(iters);
        let mut sync_ms = Vec::with_capacity(iters);
        let mut compute_ms = Vec::with_capacity(iters);
        let mut packed_bytes = 0u64;
        let _ = take_gemm_phase(); // drop any stale accumulation
        for i in 0..warmup + iters {
            comm.barrier(&world);
            let t0 = Instant::now();
            net.train_step(&x, &t, 0.01);
            comm.barrier(&world);
            // Drain every iteration so each sample covers one step.
            let phase = take_gemm_phase();
            if i >= warmup {
                step_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                sync_ms.push(net.last_grad_sync_seconds() * 1e3);
                compute_ms.push((
                    phase.total_seconds() * 1e3,
                    phase.nn_seconds * 1e3,
                    phase.nt_seconds * 1e3,
                    phase.tn_seconds * 1e3,
                ));
                packed_bytes = phase.packed_bytes;
            }
        }

        let buf = vec![1.0f32; ar_elems];
        let mut ar_ms = Vec::with_capacity(iters);
        for i in 0..warmup + iters {
            let mut work = buf.clone();
            comm.barrier(&world);
            let t0 = Instant::now();
            comm.all_reduce(&world, &mut work);
            comm.barrier(&world);
            if i >= warmup {
                ar_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            }
        }

        if rank == 0 {
            Some(RankTimings {
                step_ms,
                sync_ms,
                ar_ms,
                compute_ms,
                packed_bytes,
                pool: comm.pool_stats(),
            })
        } else {
            None
        }
    });

    let RankTimings {
        mut step_ms,
        mut sync_ms,
        mut ar_ms,
        compute_ms,
        packed_bytes,
        pool,
    } = results
        .into_iter()
        .flatten()
        .next()
        .expect("rank 0 must report timings");
    let scale = slowdown();
    // The per-mode samples gate on the iterations whose *total* compute
    // phase was fastest, so the four compute numbers describe the same
    // steps rather than a mix of different iterations' best cases.
    let mut by_total = compute_ms.clone();
    by_total.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite sample"));
    let fast = &by_total[..by_total.len().div_ceil(2)];
    let gate_component = |pick: fn(&(f64, f64, f64, f64)) -> f64| {
        median(&mut fast.iter().map(pick).collect::<Vec<_>>())
    };
    let mut compute_total: Vec<f64> = compute_ms.iter().map(|c| c.0).collect();
    let simd_active = {
        let a = Matrix::random(32, 32, 1.0, 17);
        let b = Matrix::random(32, 32, 1.0, 19);
        let mut c = Matrix::zeros(32, 32);
        gemm_into_stats(MatMode::NN, &a, &b, &mut c).simd
    };
    StepBenchReport {
        median_step_ms: median(&mut step_ms) * scale,
        min_step_ms: step_ms.first().copied().unwrap_or(0.0) * scale,
        max_step_ms: step_ms.last().copied().unwrap_or(0.0) * scale,
        median_allreduce_ms: median(&mut ar_ms) * scale,
        median_grad_sync_ms: median(&mut sync_ms) * scale,
        median_compute_ms: median(&mut compute_total) * scale,
        gate_step_ms: fast_half_median(&mut step_ms) * scale,
        gate_allreduce_ms: fast_half_median(&mut ar_ms) * scale,
        gate_grad_sync_ms: fast_half_median(&mut sync_ms) * scale,
        gate_compute_ms: gate_component(|c| c.0) * scale,
        gate_compute_nn_ms: gate_component(|c| c.1) * scale,
        gate_compute_nt_ms: gate_component(|c| c.2) * scale,
        gate_compute_tn_ms: gate_component(|c| c.3) * scale,
        packed_bytes_per_step: packed_bytes,
        simd_active,
        world_size,
        iters,
        pool_hits: pool.hits,
        pool_misses: pool.misses,
        pool_alloc_bytes: pool.alloc_bytes,
    }
}

/// Outcome of comparing a fresh report against the committed baseline.
#[derive(Debug, Clone, Serialize)]
pub struct GateVerdict {
    /// Relative change of the median step time vs baseline
    /// (`0.2` = 20% slower, negative = faster).
    pub step_delta: f64,
    /// Relative change of the all-reduce microbench median.
    pub allreduce_delta: f64,
    /// Relative change of the per-step GEMM compute phase — the number
    /// the blocked/packed kernel rewrite moves. Zero when the baseline
    /// predates the compute-phase fields.
    pub compute_delta: f64,
    /// Allowed regression before the gate fails.
    pub threshold: f64,
    /// Absolute ceiling on the all-reduce gate median, when one is set.
    /// A ratchet: unlike the relative threshold it cannot drift upward
    /// across baseline refreshes.
    pub allreduce_ceiling_ms: Option<f64>,
    /// `true` when the ceiling is set and `gate_allreduce_ms` exceeds it.
    pub allreduce_over_ceiling: bool,
    /// Absolute ceiling on the step gate median, when one is set — the
    /// same ratchet, pinned below the pre-rewrite baseline so the
    /// blocked-kernel win cannot silently erode.
    pub step_ceiling_ms: Option<f64>,
    /// `true` when the step ceiling is set and `gate_step_ms` exceeds it.
    pub step_over_ceiling: bool,
    /// `true` when `step_delta > threshold` or a ceiling is breached.
    pub regressed: bool,
}

/// Compare `current` against `baseline` with the given regression
/// threshold (fraction, e.g. `0.2` for 20%). The end-to-end step median
/// gates relatively; `max_allreduce_ms`, when set, additionally gates
/// the all-reduce microbench against an absolute ceiling so the
/// collective fast path can only ratchet forward.
pub fn compare(
    current: &StepBenchReport,
    baseline: &StepBenchReport,
    threshold: f64,
    max_allreduce_ms: Option<f64>,
    max_step_ms: Option<f64>,
) -> GateVerdict {
    let rel = |now: f64, then: f64| {
        if then > 0.0 {
            (now - then) / then
        } else {
            0.0
        }
    };
    let step_delta = rel(current.gate_step_ms, baseline.gate_step_ms);
    let ar_over = max_allreduce_ms.is_some_and(|cap| current.gate_allreduce_ms > cap);
    let step_over = max_step_ms.is_some_and(|cap| current.gate_step_ms > cap);
    GateVerdict {
        step_delta,
        allreduce_delta: rel(current.gate_allreduce_ms, baseline.gate_allreduce_ms),
        compute_delta: rel(current.gate_compute_ms, baseline.gate_compute_ms),
        threshold,
        allreduce_ceiling_ms: max_allreduce_ms,
        allreduce_over_ceiling: ar_over,
        step_ceiling_ms: max_step_ms,
        step_over_ceiling: step_over,
        regressed: step_delta > threshold || ar_over || step_over,
    }
}

/// Load a previously emitted report from a JSON file.
pub fn load_report(path: &std::path::Path) -> Result<StepBenchReport, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(step: f64, ar: f64) -> StepBenchReport {
        StepBenchReport {
            median_step_ms: step,
            min_step_ms: step,
            max_step_ms: step,
            median_allreduce_ms: ar,
            median_grad_sync_ms: step / 10.0,
            median_compute_ms: step / 2.0,
            gate_step_ms: step,
            gate_allreduce_ms: ar,
            gate_grad_sync_ms: step / 10.0,
            gate_compute_ms: step / 2.0,
            gate_compute_nn_ms: step / 4.0,
            gate_compute_nt_ms: step / 8.0,
            gate_compute_tn_ms: step / 8.0,
            packed_bytes_per_step: 0,
            simd_active: false,
            world_size: 4,
            iters: 5,
            pool_hits: 0,
            pool_misses: 0,
            pool_alloc_bytes: 0,
        }
    }

    #[test]
    fn gate_passes_within_threshold_and_fails_beyond() {
        let base = report(10.0, 2.0);
        let ok = compare(&report(11.5, 2.0), &base, 0.2, None, None);
        assert!(!ok.regressed, "15% slower must pass a 20% gate");
        let bad = compare(&report(25.0, 2.0), &base, 0.2, None, None);
        assert!(bad.regressed, "2.5x slower must fail");
        assert!(bad.step_delta > 1.4 && bad.step_delta < 1.6);
        // report() scales compute with step, so the delta tracks it.
        assert!(bad.compute_delta > 1.4 && bad.compute_delta < 1.6);
    }

    #[test]
    fn allreduce_ceiling_gates_independently_of_step_delta() {
        let base = report(10.0, 2.0);
        // Step within threshold but all-reduce above the absolute cap:
        // the ceiling must fail the gate on its own.
        let capped = compare(&report(10.5, 3.0), &base, 0.2, Some(2.5), None);
        assert!(capped.allreduce_over_ceiling);
        assert!(capped.regressed, "ceiling breach must fail the gate");
        assert_eq!(capped.allreduce_ceiling_ms, Some(2.5));
        // Same run under the cap passes; no ceiling means no ceiling gate.
        let under = compare(&report(10.5, 2.4), &base, 0.2, Some(2.5), None);
        assert!(!under.allreduce_over_ceiling && !under.regressed);
        let uncapped = compare(&report(10.5, 99.0), &base, 0.2, None, None);
        assert!(!uncapped.allreduce_over_ceiling && !uncapped.regressed);
    }

    #[test]
    fn step_ceiling_ratchets_the_blocked_kernel_win() {
        // The baseline itself sits *under* the cap (post-rewrite world);
        // a run that drifts back above it must fail even when the
        // relative threshold would tolerate the drift.
        let base = report(10.0, 2.0);
        let drifted = compare(&report(11.0, 2.0), &base, 0.2, None, Some(10.5));
        assert!(drifted.step_over_ceiling);
        assert!(drifted.regressed, "step ceiling breach must fail");
        assert_eq!(drifted.step_ceiling_ms, Some(10.5));
        let held = compare(&report(10.2, 2.0), &base, 0.2, None, Some(10.5));
        assert!(!held.step_over_ceiling && !held.regressed);
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report(12.25, 3.5);
        let text = serde_json::to_string(&r).unwrap();
        let back: StepBenchReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back.median_step_ms, r.median_step_ms);
        assert_eq!(back.pool_alloc_bytes, r.pool_alloc_bytes);
    }

    #[test]
    fn median_of_even_and_odd_sample_counts() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn fast_half_median_ignores_slow_tail() {
        // Fastest half of [1,2,3,100] is [1,2] -> 1.5; the contention
        // spike at 100 must not move the gate statistic.
        assert_eq!(fast_half_median(&mut [100.0, 2.0, 1.0, 3.0]), 1.5);
    }

    #[test]
    fn tiny_bench_run_produces_sane_report() {
        let cfg = StepBenchConfig {
            grid: (2, 1, 1, 1),
            dims: vec![16, 32, 16],
            batch: 8,
            iters: 2,
            warmup: 1,
            allreduce_elems: 4096,
            grad_sync: GradSyncMode::default(),
        };
        let r = run_step_bench(&cfg);
        assert_eq!(r.world_size, 2);
        assert!(r.median_step_ms > 0.0);
        assert!(r.median_allreduce_ms > 0.0);
        assert!(
            r.median_compute_ms > 0.0 && r.median_compute_ms < r.median_step_ms,
            "GEMM phase must be timed and lie inside the step, got {r:?}"
        );
        assert!(
            r.gate_compute_nn_ms > 0.0 && r.gate_compute_nt_ms > 0.0 && r.gate_compute_tn_ms > 0.0,
            "a training step exercises all three GEMM modes, got {r:?}"
        );
        assert!(
            r.packed_bytes_per_step > 0,
            "blocked kernels must report pack traffic, got {r:?}"
        );
        assert!(
            r.median_grad_sync_ms > 0.0 && r.median_grad_sync_ms < r.median_step_ms,
            "grad-sync phase must be timed and lie inside the step, got {r:?}"
        );
        assert!(
            r.pool_hits > 0,
            "repeated steps must recycle pooled slabs, got {r:?}"
        );
    }
}
