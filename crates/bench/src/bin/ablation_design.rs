//! Ablations of AxoNN's design choices (beyond the paper's own Fig. 7):
//!
//! 1. **Z-sharding of W vs Agarwal's replication** (the Section V-A
//!    modification): per-GCD memory on Frontier across model sizes.
//! 2. **bf16 vs fp32 communication**: predicted per-iteration
//!    communication time if tensors moved at 4 bytes/element.
//! 3. **Ring vs recursive-doubling all-reduce**: the latency/bandwidth
//!    crossover that justifies Assumption-1 for the paper's (large)
//!    messages.

use axonn_bench::{emit_json, print_table, series};
use axonn_collectives::{CollectiveKind, CostModel, RingCostModel};
use axonn_perfmodel::{estimate_memory, estimate_memory_replicated_w, network_comm_time, Grid4d};
use axonn_sim::pick_best_config;
use axonn_sim::SimOptions;
use serde::Serialize;

#[derive(Serialize)]
struct MemoryRow {
    model: String,
    grid: String,
    sharded_gb: f64,
    replicated_gb: f64,
    saving_factor: f64,
}

fn main() {
    let (machine, db) = series::machine_with_db("Frontier");
    let batch = series::headline_batch();

    // --- 1. Z-sharding vs replication ---
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (billions, gcds) in [(20usize, 2048usize), (40, 4096), (80, 8192)] {
        let model = axonn_gpt::model_by_billions(billions);
        let (grid, _) =
            pick_best_config(&machine, &db, &model, batch, gcds, SimOptions::full(), 10);
        let sharded = estimate_memory(&model, grid, batch).total() / 1e9;
        let replicated = estimate_memory_replicated_w(&model, grid, batch).total() / 1e9;
        rows.push(vec![
            model.name.clone(),
            format!("{grid}"),
            format!("{sharded:.1} GB"),
            format!("{replicated:.1} GB"),
            format!("{:.1}x", replicated / sharded),
            if replicated > 64.0 && sharded <= 64.0 {
                "sharding makes it fit".into()
            } else {
                String::new()
            },
        ]);
        json_rows.push(MemoryRow {
            model: model.name.clone(),
            grid: format!("{grid}"),
            sharded_gb: sharded,
            replicated_gb: replicated,
            saving_factor: replicated / sharded,
        });
    }
    print_table(
        "Ablation 1 — per-GCD memory: Z-sharded Ŵ (AxoNN) vs replicated W (Agarwal)",
        &[
            "model",
            "config",
            "sharded",
            "replicated",
            "factor",
            "note (64 GB GCDs)",
        ],
        &rows,
    );

    // --- 2. bf16 vs fp32 communication ---
    let model = axonn_gpt::model_by_billions(40);
    let grid = Grid4d::new(8, 2, 16, 16); // 4096 GCDs
    let bf16 = network_comm_time(&machine, &db, grid, &model, batch);
    // fp32 moves exactly twice the bytes in every term.
    let fp32 = 2.0 * bf16;
    print_table(
        "Ablation 2 — communicated precision (GPT-40B, 4,096 GCDs)",
        &["precision", "predicted comm/iter"],
        &[
            vec!["bf16 (paper)".into(), format!("{bf16:.2} s")],
            vec!["fp32".into(), format!("{fp32:.2} s")],
        ],
    );

    // --- 3. Ring vs recursive doubling ---
    let cost = RingCostModel::new(1.0, 100.0e9).with_latency(10.0e-6);
    let mut rd_rows = Vec::new();
    for bytes_exp in [10u32, 14, 18, 22, 26, 30] {
        let bytes = 2f64.powi(bytes_exp as i32);
        let ring = cost.collective_seconds(CollectiveKind::AllReduce, 64, bytes);
        let rd = cost.collective_seconds(CollectiveKind::AllReduceRecursiveDoubling, 64, bytes);
        rd_rows.push(vec![
            format!("{:.0} KiB", bytes / 1024.0),
            format!("{:.1} µs", ring * 1e6),
            format!("{:.1} µs", rd * 1e6),
            if rd < ring {
                "recursive doubling"
            } else {
                "ring"
            }
            .into(),
        ]);
    }
    print_table(
        "Ablation 3 — all-reduce algorithm on 64 ranks (β=100 GB/s, α=10 µs)",
        &["message", "ring", "recursive doubling", "winner"],
        &rd_rows,
    );
    println!("\nThe paper's gradient buckets are hundreds of MB: squarely in the ring regime,");
    println!("which is why Assumption-1 models every collective as a ring.");

    emit_json("ablation_design", &json_rows);
}
