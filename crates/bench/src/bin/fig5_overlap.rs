//! Figure 5: impact of overlapping non-blocking collectives with
//! computation on Frontier — batch-time breakdown (compute vs exposed
//! communication) for the baseline and the cumulative OAR / +ORS / +OAG
//! optimizations, for GPT-20B on 2,048, GPT-40B on 4,096 and GPT-80B on
//! 8,192 GCDs. The paper reports an 18.69% improvement for the 80B model.

use axonn_bench::{emit_json, fmt_secs, paper, print_table, series};
use axonn_sim::{pick_best_config, simulate_batch_traced, SimOptions};
use axonn_trace::{TraceSink, TraceSummary};
use serde::Serialize;

#[derive(Serialize)]
struct Bar {
    model: String,
    gcds: usize,
    variant: &'static str,
    total_seconds: f64,
    compute_seconds: f64,
    exposed_comm_seconds: f64,
    improvement_over_baseline_pct: f64,
}

/// Per-phase trace accounting for one (model, variant) cell — the
/// machine-checkable companion to the bar chart: the overlap report is
/// derived from the recorded event stream, not from the simulator's own
/// counters, so the two agree only if the instrumentation is faithful.
#[derive(Serialize)]
struct TraceCell {
    model: String,
    gcds: usize,
    variant: &'static str,
    issued_comm_seconds: f64,
    exposed_comm_seconds: f64,
    hidden_comm_seconds: f64,
    overlap_efficiency: f64,
    total_events: usize,
    improvement_over_baseline_pct: f64,
    /// The paper's Fig. 5 headline (18.69% for GPT-80B) for comparison.
    paper_80b_gain_pct: f64,
}

fn main() {
    let (machine, db) = series::machine_with_db("Frontier");
    let batch = series::headline_batch();
    let cases = [(20usize, 2048usize), (40, 4096), (80, 8192)];

    let mut variants: Vec<(&'static str, SimOptions)> = Vec::new();
    let mut o = SimOptions::baseline();
    o.kernel_tuning = true; // Fig. 5 isolates overlap; tuning stays on.
    variants.push(("baseline", o));
    o.overlap_ar = true;
    variants.push(("+OAR", o));
    o.overlap_rs = true;
    variants.push(("+ORS", o));
    o.overlap_ag = true;
    variants.push(("+OAG", o));

    let mut bars = Vec::new();
    let mut trace_cells = Vec::new();
    for (billions, gcds) in cases {
        let model = axonn_gpt::model_by_billions(billions);
        // One configuration per case (chosen with full overlap, then held
        // fixed across the four variants, as in the paper's experiment).
        let (grid, _) =
            pick_best_config(&machine, &db, &model, batch, gcds, SimOptions::full(), 30);
        let mut baseline_total = 0.0;
        for (name, opts) in &variants {
            let sink = TraceSink::new(0);
            let b = simulate_batch_traced(&machine, &db, grid, &model, batch, *opts, &sink);
            let summary = TraceSummary::from_traces(&[sink.finish()]);
            if *name == "baseline" {
                baseline_total = b.total_seconds;
            }
            let improvement = 100.0 * (1.0 - b.total_seconds / baseline_total);
            bars.push(Bar {
                model: model.name.clone(),
                gcds,
                variant: name,
                total_seconds: b.total_seconds,
                compute_seconds: b.compute_seconds,
                exposed_comm_seconds: b.exposed_comm_seconds,
                improvement_over_baseline_pct: improvement,
            });
            trace_cells.push(TraceCell {
                model: model.name.clone(),
                gcds,
                variant: name,
                issued_comm_seconds: summary.overlap.total_issued_seconds,
                exposed_comm_seconds: summary.overlap.total_exposed_seconds,
                hidden_comm_seconds: summary.overlap.total_hidden_seconds,
                overlap_efficiency: summary.overlap.overlap_efficiency,
                total_events: summary.total_events,
                improvement_over_baseline_pct: improvement,
                paper_80b_gain_pct: paper::FIG5_80B_OVERLAP_GAIN_PCT,
            });
        }
    }

    let rows: Vec<Vec<String>> = bars
        .iter()
        .map(|b| {
            vec![
                b.model.clone(),
                b.gcds.to_string(),
                b.variant.to_string(),
                fmt_secs(b.total_seconds),
                fmt_secs(b.compute_seconds),
                fmt_secs(b.exposed_comm_seconds),
                format!("{:.2}%", b.improvement_over_baseline_pct),
            ]
        })
        .collect();
    print_table(
        "Fig. 5 — overlap optimizations on Frontier (batch = 16.8M tokens)",
        &[
            "model",
            "GCDs",
            "variant",
            "total",
            "compute",
            "exposed comm",
            "vs baseline",
        ],
        &rows,
    );
    println!(
        "\nPaper: GPT-80B on 8,192 GCDs improves {:.2}% with all three overlaps.",
        paper::FIG5_80B_OVERLAP_GAIN_PCT
    );
    emit_json("fig5_overlap", &bars);
    emit_json("fig5_overlap_trace", &trace_cells);
}
