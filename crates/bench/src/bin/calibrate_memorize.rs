//! Calibration utility for the memorization experiment: sweep the
//! training-pressure knobs for one model scale and print per-bucket
//! exact-match rates. Used to size `ExperimentConfig::bench()` so the
//! Fig. 10 shape emerges within a CPU budget.
//!
//! ```sh
//! cargo run --release -p axonn-bench --bin calibrate_memorize -- \
//!     <dim> <layers> <steps_per_batch> <lr_max_milli> <lr_min_milli> \
//!     <articles_per_bucket> <seq_len> <gen_tokens>
//! ```

use axonn_memorize::{run_scale, ExperimentConfig, ModelScale};

fn main() {
    let a: Vec<usize> = std::env::args()
        .skip(1)
        .map(|s| s.parse().expect("numeric args"))
        .collect();
    let dim = *a.first().unwrap_or(&128);
    let layers = *a.get(1).unwrap_or(&3);
    let steps = *a.get(2).unwrap_or(&3);
    let lr_max = *a.get(3).unwrap_or(&3) as f32 * 1e-3;
    let lr_min = *a.get(4).unwrap_or(&1) as f32 * 1e-3;
    let per_bucket = *a.get(5).unwrap_or(&5);
    let seq_len = *a.get(6).unwrap_or(&64);
    let gen_tokens = *a.get(7).unwrap_or(&24);
    let bg_mix = *a.get(8).unwrap_or(&6);

    let mut cfg = ExperimentConfig::bench();
    cfg.steps_per_batch = steps;
    cfg.lr_max = lr_max;
    cfg.lr_min = lr_min;
    cfg.articles_per_bucket = per_bucket;
    cfg.seq_len = seq_len;
    cfg.gen_tokens = gen_tokens;
    cfg.background_mix = bg_mix;

    let scale = ModelScale::new("calib", dim, 4, layers);
    let t0 = std::time::Instant::now();
    let r = run_scale(&scale, &cfg);
    println!(
        "dim={dim} L={layers} steps={steps} lr={lr_max}->{lr_min} arts={per_bucket} seq={seq_len} gen={gen_tokens}"
    );
    for b in &r.buckets {
        println!(
            "  {} epochs: {:.0}% ({}/{})",
            b.epochs, b.exact_match_pct, b.matched, b.total
        );
    }
    println!("  wall: {:.1}s", t0.elapsed().as_secs_f64());
}
