//! Table I: comparison with prior large-scale LLM training studies. The
//! prior-work rows are the paper's survey (static context); the three
//! "This Work" rows are regenerated from our simulator's weak-scaling
//! headline points (40B/4096 A100, 320B/32768 GCD, 60B/6144 H100).

use axonn_bench::{emit_json, paper, print_table, series};
use axonn_sim::{pick_best_config, SimOptions};
use serde::Serialize;

#[derive(Serialize)]
struct OursRow {
    machine: String,
    model: String,
    gpus: usize,
    pct_peak: f64,
    petaflops: f64,
}

fn main() {
    let batch = series::headline_batch();
    let headline = [
        ("Perlmutter", 40usize, 4096usize, "NVIDIA A100"),
        ("Frontier", 320, 32768, "AMD MI250X"),
        ("Alps", 60, 6144, "NVIDIA H100"),
    ];

    let mut rows: Vec<Vec<String>> = paper::TABLE1_PRIOR
        .iter()
        .map(|r| {
            vec![
                r.study.to_string(),
                r.framework.to_string(),
                r.model_size.to_string(),
                r.batch_size.to_string(),
                r.hardware.to_string(),
                r.scale.to_string(),
                r.pct_peak.to_string(),
                r.petaflops.to_string(),
            ]
        })
        .collect();

    let mut ours = Vec::new();
    for (machine_name, billions, gpus, hw) in headline {
        let (machine, db) = series::machine_with_db(machine_name);
        let model = axonn_gpt::model_by_billions(billions);
        let (_, b) = pick_best_config(&machine, &db, &model, batch, gpus, SimOptions::full(), 30);
        let rate = model.model_flops_per_iter(batch) / b.total_seconds;
        let pct = 100.0 * rate / (gpus as f64 * machine.advertised_peak());
        let unit = if machine_name == "Frontier" {
            "GCDs"
        } else {
            "GPUs"
        };
        rows.push(vec![
            "This Work (repro)".to_string(),
            "AxoNN-rs".to_string(),
            model.name.replace("GPT-", "").to_string(),
            "16.8M".to_string(),
            hw.to_string(),
            format!("{gpus} {unit}"),
            format!("{pct:.0}%"),
            format!("{:.1}", rate / 1e15),
        ]);
        ours.push(OursRow {
            machine: machine_name.to_string(),
            model: model.name.clone(),
            gpus,
            pct_peak: pct,
            petaflops: rate / 1e15,
        });
    }

    print_table(
        "Table I — large-scale LLM training studies (prior rows from the paper; ours simulated)",
        &[
            "study",
            "framework",
            "model",
            "batch",
            "hardware",
            "scale",
            "% peak",
            "Pflop/s",
        ],
        &rows,
    );
    println!("\nPaper's own rows: 40B/4096 A100 -> 49% / 620.1; 320B/32768 GCD -> 22% / 1381.0; 60B/6144 H100 -> 23% / 1423.1");
    emit_json("table1", &ours);
}
