//! Figure 2: validation of the communication performance model.
//!
//! For GPT-20B on 32 GPUs and GPT-40B on 64 GPUs of Perlmutter, run every
//! memory-feasible 4D configuration on the *observed* simulator (latency +
//! congestion jitter — effects the analytic model deliberately ignores),
//! rank all configurations with the analytic model (Equations 1–7), and
//! report observed batch time against model rank. The paper's headline
//! validation: 9 of the model's top-10 are among the truly efficient
//! configurations.

use axonn_bench::{emit_json, fmt_secs, print_table, series};
use axonn_perfmodel::rank_configs;
use axonn_sim::{simulate_batch, Fidelity, SimOptions};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    model_rank: usize,
    grid: String,
    predicted_comm_seconds: f64,
    observed_batch_seconds: f64,
    observed_efficient: bool,
}

fn run_case(model_billions: usize, gpus: usize, batch_tokens: usize) -> Vec<Point> {
    let (machine, db) = series::machine_with_db("Perlmutter");
    let model = axonn_gpt::model_by_billions(model_billions);
    let mem_limit = machine.mem_per_gpu * axonn_sim::configs::USABLE_MEM_FRACTION;
    let ranked = rank_configs(&machine, &db, &model, batch_tokens, gpus, Some(mem_limit));
    assert!(!ranked.is_empty(), "no feasible configs");

    // Observed batch times: average of three "runs" (seeds), as the paper
    // averages iterations.
    let opts = SimOptions::full();
    let mut points: Vec<Point> = ranked
        .iter()
        .enumerate()
        .map(|(rank, rc)| {
            let avg: f64 = (0..3)
                .map(|s| {
                    simulate_batch(
                        &machine,
                        &db,
                        rc.grid,
                        &model,
                        batch_tokens,
                        opts.with_fidelity(Fidelity::observed(1000 + s)),
                    )
                    .total_seconds
                })
                .sum::<f64>()
                / 3.0;
            Point {
                model_rank: rank + 1,
                grid: format!("{}", rc.grid),
                predicted_comm_seconds: rc.predicted_comm_seconds,
                observed_batch_seconds: avg,
                observed_efficient: false,
            }
        })
        .collect();

    // Label the 10 fastest observed configurations as "efficient".
    let mut by_time: Vec<usize> = (0..points.len()).collect();
    by_time.sort_by(|&a, &b| {
        points[a]
            .observed_batch_seconds
            .total_cmp(&points[b].observed_batch_seconds)
    });
    for &i in by_time.iter().take(10) {
        points[i].observed_efficient = true;
    }
    points
}

fn report(name: &str, points: &[Point]) {
    let hits = points
        .iter()
        .take(10)
        .filter(|p| p.observed_efficient)
        .count();
    let rows: Vec<Vec<String>> = points
        .iter()
        .take(15)
        .map(|p| {
            vec![
                p.model_rank.to_string(),
                p.grid.clone(),
                fmt_secs(p.predicted_comm_seconds),
                fmt_secs(p.observed_batch_seconds),
                if p.observed_efficient {
                    "efficient"
                } else {
                    ""
                }
                .to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Fig. 2 — {name}: model rank vs observed batch time (top 15 of {})",
            points.len()
        ),
        &[
            "rank",
            "config",
            "predicted comm",
            "observed batch",
            "top-10 observed?",
        ],
        &rows,
    );
    println!("{name}: {hits}/10 of the model's top-10 are observed-efficient (paper: 9/10)");
}

fn main() {
    // Batches sized for these small partitions (the paper does not state
    // them; 0.5M and 1M tokens keep per-GPU work comparable to the
    // headline runs).
    let a = run_case(20, 32, 1 << 19);
    report("GPT-20B on 32 GPUs", &a);
    let b = run_case(40, 64, 1 << 20);
    report("GPT-40B on 64 GPUs", &b);
    emit_json("fig2_perfmodel", &vec![a, b]);
}
