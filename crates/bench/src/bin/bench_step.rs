//! CI perf-regression gate: measure the wall-clock training step and
//! compare against the committed baseline.
//!
//! Usage:
//!   bench_step [--iters N] [--check BASELINE.json] [--threshold F]
//!              [--max-allreduce-ms F] [--max-step-ms F]
//!              [--write-baseline] [--per-tensor]
//!              [--no-drift] [--overhead-check [F]]
//!
//! Always writes `results/BENCH_step_time.json` and (unless
//! `--no-drift`) the perfmodel drift report
//! `results/DRIFT_perfmodel.json` (collective *and* GEMM sweeps). With
//! `--check`, exits non-zero when the median step time regresses by
//! more than the threshold (default 20%) relative to the baseline file;
//! `--max-allreduce-ms` adds an absolute ceiling on the all-reduce gate
//! median so the collective fast path can only ratchet forward, and
//! `--max-step-ms` does the same for the step gate median (pinned below
//! the pre-blocked-kernel baseline so the GEMM win cannot erode). With
//! `--write-baseline`, also refreshes
//! `results/bench_step_baseline.json` (commit that file to move the
//! gate). With `--overhead-check`, re-runs the step benchmark with live
//! metrics disabled (`AXONN_METRICS=0`) and fails when the telemetry
//! plane costs more than the given fraction of step time (default 5%).
//! When `$GITHUB_STEP_SUMMARY` is set, `--check` also appends a
//! baseline-vs-current delta table in Markdown.

use std::path::PathBuf;
use std::process::ExitCode;

use axonn_bench::drift::{run_drift, run_gemm_drift, DriftConfig, GemmDriftConfig};
use axonn_bench::step::{compare, load_report, run_step_bench, StepBenchConfig};
use axonn_bench::{emit_json, print_table};
use axonn_core::GradSyncMode;

const DEFAULT_THRESHOLD: f64 = 0.20;
// The telemetry budget is really an absolute cost (~0.2 ms of metric
// stamping per step); expressing it as a fraction means the limit must
// be rebased when the step itself gets faster. 5% of the post-blocked-
// kernel ~6.5 ms step is the same absolute budget 1% was of the
// pre-blocked-kernel ~27 ms step.
const DEFAULT_OVERHEAD_THRESHOLD: f64 = 0.05;

/// Telemetry overhead assertion: gate step time with the live registry
/// on vs. `AXONN_METRICS=0`, using the min of two runs per mode to
/// shave scheduler noise. Returns the signed fractional delta.
fn overhead_delta(cfg: &StepBenchConfig) -> f64 {
    let gate_min = |on: bool| {
        // Safety of set_var: this binary is single-threaded at this
        // point (benchmark worlds are created after the var is set).
        if on {
            std::env::set_var("AXONN_METRICS", "1");
        } else {
            std::env::set_var("AXONN_METRICS", "0");
        }
        (0..2)
            .map(|_| run_step_bench(cfg).gate_step_ms)
            .fold(f64::MAX, f64::min)
    };
    let with_metrics = gate_min(true);
    let without = gate_min(false);
    std::env::remove_var("AXONN_METRICS");
    (with_metrics - without) / without
}

fn main() -> ExitCode {
    let mut cfg = StepBenchConfig::default();
    let mut check: Option<PathBuf> = None;
    let mut threshold = DEFAULT_THRESHOLD;
    let mut max_allreduce_ms: Option<f64> = None;
    let mut max_step_ms: Option<f64> = None;
    let mut write_baseline = false;
    let mut emit_drift = true;
    let mut overhead_check: Option<f64> = None;

    let mut argv = std::env::args().skip(1).peekable();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--iters" => {
                cfg.iters = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--iters needs a positive integer");
            }
            "--check" => {
                check = Some(PathBuf::from(argv.next().expect("--check needs a path")));
            }
            "--threshold" => {
                threshold = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threshold needs a fraction, e.g. 0.2");
            }
            "--max-allreduce-ms" => {
                max_allreduce_ms = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--max-allreduce-ms needs a duration in ms, e.g. 11.2"),
                );
            }
            "--max-step-ms" => {
                max_step_ms = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--max-step-ms needs a duration in ms, e.g. 19.0"),
                );
            }
            "--write-baseline" => write_baseline = true,
            // Benchmark the serial per-tensor oracle instead of the
            // bucketed ZeRO-1 pipeline (for measuring the pipeline's win
            // on the same grid; not for baselines).
            "--per-tensor" => cfg.grad_sync = GradSyncMode::PerTensor,
            "--no-drift" => emit_drift = false,
            "--overhead-check" => {
                // Optional fraction operand (e.g. `--overhead-check 0.02`).
                let mut frac = DEFAULT_OVERHEAD_THRESHOLD;
                if let Some(f) = argv.peek().and_then(|v| v.parse::<f64>().ok()) {
                    argv.next();
                    frac = f;
                }
                overhead_check = Some(frac);
            }
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: bench_step [--iters N] [--check BASELINE.json] [--threshold F] \
                     [--max-allreduce-ms F] [--max-step-ms F] [--write-baseline] \
                     [--per-tensor] [--no-drift] [--overhead-check [F]]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let report = run_step_bench(&cfg);
    print_table(
        "bench_step — wall-clock training step",
        &["metric", "value"],
        &[
            vec![
                "median step".into(),
                format!("{:.3} ms", report.median_step_ms),
            ],
            vec![
                "gate step (fast-half median)".into(),
                format!("{:.3} ms", report.gate_step_ms),
            ],
            vec![
                "min / max step".into(),
                format!("{:.3} / {:.3} ms", report.min_step_ms, report.max_step_ms),
            ],
            vec![
                "median grad-sync phase".into(),
                format!("{:.3} ms", report.median_grad_sync_ms),
            ],
            vec![
                "gate grad-sync (fast-half median)".into(),
                format!("{:.3} ms", report.gate_grad_sync_ms),
            ],
            vec![
                "median compute (GEMM phase)".into(),
                format!("{:.3} ms", report.median_compute_ms),
            ],
            vec![
                "gate compute (fast-half median)".into(),
                format!(
                    "{:.3} ms  (NN {:.3} / NT {:.3} / TN {:.3})",
                    report.gate_compute_ms,
                    report.gate_compute_nn_ms,
                    report.gate_compute_nt_ms,
                    report.gate_compute_tn_ms
                ),
            ],
            vec![
                "packed bytes / step".into(),
                format!(
                    "{:.1} KiB  (simd {})",
                    report.packed_bytes_per_step as f64 / 1024.0,
                    if report.simd_active { "on" } else { "off" }
                ),
            ],
            vec![
                "median all-reduce (1M f32)".into(),
                format!("{:.3} ms", report.median_allreduce_ms),
            ],
            vec![
                "pool hits / misses".into(),
                format!("{} / {}", report.pool_hits, report.pool_misses),
            ],
            vec![
                "fresh alloc".into(),
                format!("{:.1} KiB", report.pool_alloc_bytes as f64 / 1024.0),
            ],
        ],
    );
    emit_json("BENCH_step_time", &report);
    if write_baseline {
        emit_json("bench_step_baseline", &report);
    }

    if emit_drift {
        let mut drift = run_drift(&DriftConfig::default());
        drift.gemm = run_gemm_drift(&GemmDriftConfig::default());
        let rows: Vec<Vec<String>> = drift
            .entries
            .iter()
            .map(|e| {
                vec![
                    e.op.to_string(),
                    e.algo.to_string(),
                    format!("{}", e.elems),
                    format!("{:.3}", e.measured_s * 1e3),
                    format!("{:.3}", e.predicted_s * 1e3),
                    format!("{:.2}", e.ratio),
                ]
            })
            .collect();
        print_table(
            "perfmodel drift — measured vs Eq. 1–5 (calibrated β̂)",
            &[
                "op",
                "algo",
                "elems/rank",
                "measured ms",
                "predicted ms",
                "ratio",
            ],
            &rows,
        );
        println!(
            "[drift] calibrated bandwidth {:.2} MiB/s over {} ranks",
            drift.bandwidth_estimate / (1024.0 * 1024.0),
            drift.world
        );
        if let Some(gemm) = &drift.gemm {
            let tier_rows: Vec<Vec<String>> = gemm
                .tiers
                .iter()
                .map(|t| {
                    vec![
                        t.mode.to_string(),
                        format!("{}x{}x{}", t.m, t.k, t.n),
                        format!("{:.2}", t.naive_gflops),
                        format!("{:.2}", t.blocked_gflops),
                        format!("{:.2}", t.auto_gflops),
                    ]
                })
                .collect();
            print_table(
                "gemm kernel tiers — sustained Gflop/s",
                &["mode", "shape", "naive", "blocked", "blocked+simd"],
                &tier_rows,
            );
            let gemm_rows: Vec<Vec<String>> = gemm
                .entries
                .iter()
                .map(|e| {
                    vec![
                        e.mode.to_string(),
                        format!("{}x{}x{}", e.m, e.k, e.n),
                        format!("{:.3}", e.measured_s * 1e3),
                        format!("{:.3}", e.predicted_s * 1e3),
                        format!("{:.2}", e.ratio),
                    ]
                })
                .collect();
            print_table(
                "gemm drift — measured vs calibrated compute model",
                &["mode", "shape", "measured ms", "predicted ms", "ratio"],
                &gemm_rows,
            );
            println!(
                "[drift] gemm fit: peak {:.2} Gflop/s, half-sat {:.0}, NT x{:.2}, TN x{:.2}, \
                 simd {} — ratios {} within [{}, {}]",
                gemm.peak_flops / 1e9,
                gemm.half_sat,
                gemm.nt_factor,
                gemm.tn_factor,
                if gemm.simd_active { "on" } else { "off" },
                if gemm.all_within_tolerance() {
                    "all"
                } else {
                    "NOT all"
                },
                gemm.tolerance_low,
                gemm.tolerance_high
            );
        }
        let path = emit_json("DRIFT_perfmodel", &drift);
        println!("[drift] wrote {}", path.display());
    }

    if let Some(frac) = overhead_check {
        let delta = overhead_delta(&cfg);
        println!(
            "[telemetry-overhead] gate step delta with metrics on vs AXONN_METRICS=0: {:+.2}% (limit {:.0}%)",
            delta * 100.0,
            frac * 100.0
        );
        if delta > frac {
            eprintln!(
                "[telemetry-overhead] FAIL: live metrics cost {:.2}% > {:.0}% of step time",
                delta * 100.0,
                frac * 100.0
            );
            return ExitCode::FAILURE;
        }
        println!("[telemetry-overhead] PASS");
    }

    if let Some(baseline_path) = check {
        let baseline = match load_report(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("[perf-gate] {e}");
                eprintln!(
                    "[perf-gate] regenerate with: cargo run --release -p axonn-bench \
                     --features simd --bin bench_step -- --write-baseline"
                );
                return ExitCode::FAILURE;
            }
        };
        let verdict = compare(&report, &baseline, threshold, max_allreduce_ms, max_step_ms);
        println!(
            "[perf-gate] step {:+.1}% (gate {:+.0}%), compute {:+.1}%, all-reduce {:+.1}% vs {}",
            verdict.step_delta * 100.0,
            verdict.threshold * 100.0,
            verdict.compute_delta * 100.0,
            verdict.allreduce_delta * 100.0,
            baseline_path.display(),
        );
        write_step_summary(&report, &baseline, &verdict, &baseline_path);
        if verdict.step_over_ceiling {
            eprintln!(
                "[perf-gate] FAIL: step gate median {:.3} ms exceeds the {:.3} ms \
                 absolute ceiling",
                report.gate_step_ms,
                verdict.step_ceiling_ms.unwrap_or(f64::NAN)
            );
            eprintln!(
                "[perf-gate] the ceiling ratchets the blocked-GEMM win; if the \
                 regression is intentional, refresh the baseline with: cargo run \
                 --release -p axonn-bench --features simd --bin bench_step -- \
                 --write-baseline and raise --max-step-ms in \
                 .github/workflows/ci.yml"
            );
            return ExitCode::FAILURE;
        }
        if verdict.allreduce_over_ceiling {
            eprintln!(
                "[perf-gate] FAIL: all-reduce gate median {:.3} ms exceeds the \
                 {:.3} ms absolute ceiling",
                report.gate_allreduce_ms,
                verdict.allreduce_ceiling_ms.unwrap_or(f64::NAN)
            );
            eprintln!(
                "[perf-gate] the ceiling ratchets the collective fast path; if the \
                 regression is intentional, refresh the baseline with: cargo run \
                 --release -p axonn-bench --features simd --bin bench_step -- \
                 --write-baseline and raise --max-allreduce-ms in \
                 .github/workflows/ci.yml"
            );
            return ExitCode::FAILURE;
        }
        if verdict.regressed {
            eprintln!(
                "[perf-gate] FAIL: step time (fast-half median) regressed {:.1}% > {:.0}% threshold",
                verdict.step_delta * 100.0,
                verdict.threshold * 100.0
            );
            return ExitCode::FAILURE;
        }
        println!("[perf-gate] PASS");
    }
    ExitCode::SUCCESS
}

/// Append a Markdown baseline-vs-current delta table to the file named
/// by `$GITHUB_STEP_SUMMARY` (set by GitHub Actions); a no-op elsewhere.
fn write_step_summary(
    report: &axonn_bench::step::StepBenchReport,
    baseline: &axonn_bench::step::StepBenchReport,
    verdict: &axonn_bench::step::GateVerdict,
    baseline_path: &std::path::Path,
) {
    let Ok(summary_path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    use std::fmt::Write as _;
    let delta = |now: f64, then: f64| {
        if then > 0.0 {
            format!("{:+.1}%", (now - then) / then * 100.0)
        } else {
            "n/a".to_string()
        }
    };
    let mut md = String::new();
    let _ = writeln!(md, "### bench_step perf gate\n");
    let _ = writeln!(md, "| metric | baseline | current | delta |");
    let _ = writeln!(md, "|---|---:|---:|---:|");
    for (name, base, now) in [
        (
            "gate step (fast-half median)",
            baseline.gate_step_ms,
            report.gate_step_ms,
        ),
        (
            "gate all-reduce",
            baseline.gate_allreduce_ms,
            report.gate_allreduce_ms,
        ),
        (
            "gate grad-sync",
            baseline.gate_grad_sync_ms,
            report.gate_grad_sync_ms,
        ),
        (
            "gate compute (GEMM phase)",
            baseline.gate_compute_ms,
            report.gate_compute_ms,
        ),
        (
            "median step",
            baseline.median_step_ms,
            report.median_step_ms,
        ),
    ] {
        let _ = writeln!(
            md,
            "| {name} | {base:.3} ms | {now:.3} ms | {} |",
            delta(now, base)
        );
    }
    let ceiling = |cap: Option<f64>, over: bool| match cap {
        Some(cap) => format!(
            "{:.3} ms ceiling — {}",
            cap,
            if over { "**exceeded**" } else { "ok" }
        ),
        None => "none".to_string(),
    };
    let ar_ceiling = ceiling(verdict.allreduce_ceiling_ms, verdict.allreduce_over_ceiling);
    let step_ceiling = ceiling(verdict.step_ceiling_ms, verdict.step_over_ceiling);
    let _ = writeln!(
        md,
        "\nthreshold {:.0}% · step ceiling: {step_ceiling} · all-reduce ceiling: {ar_ceiling} · \
         compute phase {:+.1}% · baseline `{}` · verdict **{}**",
        verdict.threshold * 100.0,
        verdict.compute_delta * 100.0,
        baseline_path.display(),
        if verdict.regressed { "FAIL" } else { "PASS" }
    );
    if let Err(e) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&summary_path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, md.as_bytes()))
    {
        eprintln!("[perf-gate] could not append step summary to {summary_path}: {e}");
    }
}
