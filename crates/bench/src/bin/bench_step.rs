//! CI perf-regression gate: measure the wall-clock training step and
//! compare against the committed baseline.
//!
//! Usage:
//!   bench_step [--iters N] [--check BASELINE.json] [--threshold F]
//!              [--write-baseline] [--per-tensor]
//!
//! Always writes `results/BENCH_step_time.json`. With `--check`, exits
//! non-zero when the median step time regresses by more than the
//! threshold (default 20%) relative to the baseline file. With
//! `--write-baseline`, also refreshes `results/bench_step_baseline.json`
//! (commit that file to move the gate).

use std::path::PathBuf;
use std::process::ExitCode;

use axonn_bench::step::{compare, load_report, run_step_bench, StepBenchConfig};
use axonn_bench::{emit_json, print_table};
use axonn_core::GradSyncMode;

const DEFAULT_THRESHOLD: f64 = 0.20;

fn main() -> ExitCode {
    let mut cfg = StepBenchConfig::default();
    let mut check: Option<PathBuf> = None;
    let mut threshold = DEFAULT_THRESHOLD;
    let mut write_baseline = false;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--iters" => {
                cfg.iters = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--iters needs a positive integer");
            }
            "--check" => {
                check = Some(PathBuf::from(argv.next().expect("--check needs a path")));
            }
            "--threshold" => {
                threshold = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threshold needs a fraction, e.g. 0.2");
            }
            "--write-baseline" => write_baseline = true,
            // Benchmark the serial per-tensor oracle instead of the
            // bucketed ZeRO-1 pipeline (for measuring the pipeline's win
            // on the same grid; not for baselines).
            "--per-tensor" => cfg.grad_sync = GradSyncMode::PerTensor,
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: bench_step [--iters N] [--check BASELINE.json] [--threshold F] [--write-baseline] [--per-tensor]");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = run_step_bench(&cfg);
    print_table(
        "bench_step — wall-clock training step",
        &["metric", "value"],
        &[
            vec![
                "median step".into(),
                format!("{:.3} ms", report.median_step_ms),
            ],
            vec![
                "gate step (fast-half median)".into(),
                format!("{:.3} ms", report.gate_step_ms),
            ],
            vec![
                "min / max step".into(),
                format!("{:.3} / {:.3} ms", report.min_step_ms, report.max_step_ms),
            ],
            vec![
                "median grad-sync phase".into(),
                format!("{:.3} ms", report.median_grad_sync_ms),
            ],
            vec![
                "gate grad-sync (fast-half median)".into(),
                format!("{:.3} ms", report.gate_grad_sync_ms),
            ],
            vec![
                "median all-reduce (1M f32)".into(),
                format!("{:.3} ms", report.median_allreduce_ms),
            ],
            vec![
                "pool hits / misses".into(),
                format!("{} / {}", report.pool_hits, report.pool_misses),
            ],
            vec![
                "fresh alloc".into(),
                format!("{:.1} KiB", report.pool_alloc_bytes as f64 / 1024.0),
            ],
        ],
    );
    emit_json("BENCH_step_time", &report);
    if write_baseline {
        emit_json("bench_step_baseline", &report);
    }

    if let Some(baseline_path) = check {
        let baseline = match load_report(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("[perf-gate] {e}");
                return ExitCode::FAILURE;
            }
        };
        let verdict = compare(&report, &baseline, threshold);
        println!(
            "[perf-gate] step {:+.1}% (gate {:+.0}%), all-reduce {:+.1}% vs {}",
            verdict.step_delta * 100.0,
            verdict.threshold * 100.0,
            verdict.allreduce_delta * 100.0,
            baseline_path.display(),
        );
        if verdict.regressed {
            eprintln!(
                "[perf-gate] FAIL: step time (fast-half median) regressed {:.1}% > {:.0}% threshold",
                verdict.step_delta * 100.0,
                verdict.threshold * 100.0
            );
            return ExitCode::FAILURE;
        }
        println!("[perf-gate] PASS");
    }
    ExitCode::SUCCESS
}
