//! Figure 9: strong scaling on Frontier — predicted time-to-solution for
//! training GPT-80B (128–8,192 GCDs) and GPT-640B (512–8,192 GCDs) on two
//! trillion tokens, extrapolated from per-iteration times exactly as in
//! the paper.

use axonn_bench::{emit_json, fmt_duration_long, fmt_secs, paper, print_table, series};
use axonn_sim::{pick_best_config, SimOptions};
use serde::Serialize;

const TOKENS_TARGET: f64 = 2.0e12;

#[derive(Serialize)]
struct Point {
    model: String,
    gcds: usize,
    grid: String,
    seconds_per_iter: f64,
    time_to_solution_days: f64,
    strong_scaling_efficiency_pct: f64,
}

fn run_model(billions: usize, gcd_counts: &[usize]) -> Vec<Point> {
    let (machine, db) = series::machine_with_db("Frontier");
    let model = axonn_gpt::model_by_billions(billions);
    let batch = series::headline_batch();
    let iters = TOKENS_TARGET / batch as f64;

    let mut points: Vec<Point> = Vec::new();
    for &gcds in gcd_counts {
        let (grid, b) =
            pick_best_config(&machine, &db, &model, batch, gcds, SimOptions::full(), 30);
        let tts_days = b.total_seconds * iters / 86_400.0;
        points.push(Point {
            model: model.name.clone(),
            gcds,
            grid: format!("{grid}"),
            seconds_per_iter: b.total_seconds,
            time_to_solution_days: tts_days,
            strong_scaling_efficiency_pct: 0.0,
        });
    }
    // Strong-scaling efficiency relative to the smallest partition.
    let t0 = points[0].seconds_per_iter * points[0].gcds as f64;
    for p in &mut points {
        p.strong_scaling_efficiency_pct = 100.0 * t0 / (p.seconds_per_iter * p.gcds as f64);
    }
    points
}

fn main() {
    let p80 = run_model(80, &[128, 256, 512, 1024, 2048, 4096, 8192]);
    let p640 = run_model(640, &[512, 1024, 2048, 4096, 8192]);

    for (name, pts) in [("GPT-80B", &p80), ("GPT-640B", &p640)] {
        let rows: Vec<Vec<String>> = pts
            .iter()
            .map(|p| {
                vec![
                    p.gcds.to_string(),
                    p.grid.clone(),
                    fmt_secs(p.seconds_per_iter),
                    fmt_duration_long(p.time_to_solution_days * 86_400.0),
                    format!("{:.1}%", p.strong_scaling_efficiency_pct),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 9 — {name} strong scaling on Frontier (2T tokens)"),
            &[
                "GCDs",
                "config",
                "time/iter",
                "time-to-solution",
                "strong-scaling eff.",
            ],
            &rows,
        );
    }
    println!("\nPaper checkpoints:");
    println!(
        "  GPT-80B:  {} @ 128 GCDs -> {} @ 8,192 GCDs",
        paper::FIG9_80B_128GCD,
        paper::FIG9_80B_8192GCD
    );
    println!(
        "  GPT-640B: {} @ 512 GCDs -> {} @ 8,192 GCDs; >90% strong-scaling efficiency for both",
        paper::FIG9_640B_512GCD,
        paper::FIG9_640B_8192GCD
    );
    emit_json("fig9_tts", &vec![p80, p640]);
}
