//! Figure 11: the Goldfish loss (k = 2, h = 13) stops memorization.
//!
//! Re-runs the Fig. 10 protocol for the large end of the model ladder
//! with the Goldfish mask applied during training; exact-match rates
//! should collapse to control-bucket levels.

use axonn_bench::emit_json;
use axonn_bench::memor::{ladder, report, trials_for};
use axonn_memorize::{run_scale_trials, ExperimentConfig, GoldfishParams, TrialStats};
use rayon::prelude::*;

fn main() {
    // Fig. 11 shows the models that memorized in Fig. 10: the 70B and
    // 405B proxies (plus one small model as a sanity row).
    let scales: Vec<_> = ladder()
        .into_iter()
        .filter(|s| s.dim >= 40 || s.dim == 20)
        .collect();

    let base_cfg = ExperimentConfig::bench();
    let gf_cfg = base_cfg.clone().with_goldfish(GoldfishParams::paper());

    let plain: Vec<TrialStats> = scales
        .par_iter()
        .map(|s| run_scale_trials(s, &base_cfg, trials_for(s)))
        .collect();
    let goldfish: Vec<TrialStats> = scales
        .par_iter()
        .map(|s| run_scale_trials(s, &gf_cfg, trials_for(s)))
        .collect();

    report("Fig. 11a — standard loss (reference)", &plain);
    report("Fig. 11b — Goldfish loss (k=2, h=13)", &goldfish);

    println!("\nPaper shape: with the Goldfish loss, exact-match rates drop to control levels");
    println!("for both 70B models and the 405B model (with only a small residual for the 405B,");
    println!("which had already memorized some pages during pre-training).");
    emit_json("fig11_goldfish", &(plain, goldfish));
}
