//! Figure 6: weak-scaling time per batch on Perlmutter, Frontier, Alps
//! (5B–320B GPT models, 512–32,768 GPUs/GCDs), with the efficiency
//! checkpoints quoted in the paper's text.

use axonn_bench::{emit_json, fmt_secs, paper, print_table, series};
use axonn_sim::{weak_scaling_series, SimOptions};

fn main() {
    let batch = series::headline_batch();
    let mut all_points = Vec::new();
    for machine_name in ["Perlmutter", "Frontier", "Alps"] {
        let (machine, db) = series::machine_with_db(machine_name);
        let pairs = series::weak_scaling_pairs(machine_name);
        let points = weak_scaling_series(&machine, &db, &pairs, batch, SimOptions::full());

        let t0 = points[0].breakdown.total_seconds;
        let gpus0 = points[0].gpus as f64;
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                // Weak-scaling efficiency: problem size grows with the
                // partition, so efficiency = (flops/gpu rate now) vs at
                // the first point = (t0-normalized per-GPU throughput).
                let eff = 100.0 * (p.model_flops_per_second / p.gpus as f64)
                    / (points[0].model_flops_per_second / gpus0);
                vec![
                    p.model.clone(),
                    p.gpus.to_string(),
                    format!("{}", p.grid),
                    fmt_secs(p.breakdown.total_seconds),
                    fmt_secs(p.breakdown.compute_seconds),
                    fmt_secs(p.breakdown.exposed_comm_seconds),
                    format!("{eff:.1}%"),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 6 — weak scaling on {machine_name} (batch = 16.8M tokens)"),
            &[
                "model",
                "GPUs",
                "config",
                "time/batch",
                "compute",
                "exposed comm",
                "efficiency",
            ],
            &rows,
        );
        let _ = t0;
        all_points.extend(points);
    }

    // Paper-quoted efficiency checkpoints for comparison.
    println!("\nPaper efficiency checkpoints (per-GPU throughput vs first point):");
    println!(
        "  Frontier  8,192 GCDs: paper {:.1}%   |  16,384: paper {:.1}%   |  32,768: paper {:.1}%",
        paper::FRONTIER_EFFICIENCY_8K,
        paper::FRONTIER_EFFICIENCY_16K,
        paper::FRONTIER_EFFICIENCY_32K
    );
    println!(
        "  Alps      6,144 GPUs: paper {:.1}%",
        paper::ALPS_EFFICIENCY_6144
    );

    emit_json("fig6_weak_scaling", &all_points);
}
