//! Diagnostic probe for the memorization protocol: runs a condensed
//! version inline and prints per-article training loss, greedy-match
//! prefix lengths, and eval losses, to expose *why* exact match does or
//! does not trigger.

use axonn_lm::{AdamW, Gpt, GptModelConfig};
use axonn_memorize::Corpus;

fn main() {
    let a: Vec<usize> = std::env::args()
        .skip(1)
        .map(|s| s.parse().unwrap())
        .collect();
    let dim = *a.first().unwrap_or(&128);
    let layers = *a.get(1).unwrap_or(&3);
    let steps = *a.get(2).unwrap_or(&4);
    let epochs = *a.get(3).unwrap_or(&6);
    let arts = *a.get(4).unwrap_or(&4);
    let seq = *a.get(5).unwrap_or(&48);
    let gen = *a.get(6).unwrap_or(&16);

    let vocab = 192;
    let corpus = Corpus::generate(vocab, seq, 1, arts, 4, 1234);
    let mut model = Gpt::new(GptModelConfig {
        vocab,
        seq_len: seq,
        dim,
        n_heads: 4,
        n_layers: layers,
        seed: 5,
    });
    println!("params: {}", model.num_parameters());
    let mut opt = AdamW::new(3e-3);

    // Warmup on background.
    for s in 0..8 {
        let art = &corpus.background[s % corpus.background.len()];
        let (x, y) = Corpus::training_pair(art);
        model.train_step(x, y, None, &mut opt);
    }
    // Epochs over the bucket, interleaved.
    for e in 0..epochs {
        let mut mean = 0.0;
        for art in &corpus.buckets[0] {
            let (x, y) = Corpus::training_pair(art);
            let mut loss = 0.0;
            for _ in 0..steps {
                loss = model.train_step(x, y, None, &mut opt);
            }
            mean += loss;
        }
        println!("epoch {e}: mean last-step loss {:.4}", mean / arts as f32);
    }
    // Evaluation (within the first context window, as in `exact_match`).
    for art in &corpus.buckets[0] {
        let window = seq.min(art.tokens.len());
        let prompt = &art.tokens[..window - gen];
        let truth = &art.tokens[window - gen..window];
        let out = model.greedy_continuation(prompt, gen);
        let prefix = out.iter().zip(truth).take_while(|(a, b)| a == b).count();
        let (x, y) = Corpus::training_pair(art);
        let eval = model.eval_loss(x, y);
        println!(
            "article {}: eval loss {:.4}, matched {}/{} greedy tokens",
            art.id, eval, prefix, gen
        );
    }
}
