//! Figure 7: cumulative impact of the performance optimizations on
//! Frontier weak scaling — the Megatron(1D-TP-in-node)+HSDP baseline,
//! then the performance-model-selected 4D configuration, then BLAS kernel
//! tuning, then communication overlap. The paper reports 13–45% total
//! improvement, with kernel tuning contributing a modest 2–4% at these
//! model sizes.

use axonn_bench::{emit_json, fmt_secs, print_table, series};
use axonn_sim::{baseline_config, pick_best_config, simulate_batch, SimOptions};
use serde::Serialize;

#[derive(Serialize)]
struct Bar {
    model: String,
    gcds: usize,
    variant: &'static str,
    grid: String,
    total_seconds: f64,
    compute_seconds: f64,
    exposed_comm_seconds: f64,
    improvement_over_baseline_pct: f64,
}

fn main() {
    let (machine, db) = series::machine_with_db("Frontier");
    let batch = series::headline_batch();
    let cases = [(10usize, 1024usize), (20, 2048), (40, 4096), (80, 8192)];

    let mut bars = Vec::new();
    for (billions, gcds) in cases {
        let model = axonn_gpt::model_by_billions(billions);
        let plain = SimOptions::baseline();

        // Bar 1: Megatron-style 1D TP within node + HSDP across nodes,
        // no tuning, no overlap.
        let base_grid = baseline_config(&machine, &model, gcds);
        let base = simulate_batch(&machine, &db, base_grid, &model, batch, plain);

        // Bar 2: best of the performance model's top configurations.
        let (grid, pm) = pick_best_config(&machine, &db, &model, batch, gcds, plain, 30);

        // Bar 3: + kernel tuning.
        let mut tuned_opts = plain;
        tuned_opts.kernel_tuning = true;
        let tuned = simulate_batch(&machine, &db, grid, &model, batch, tuned_opts);

        // Bar 4: + communication overlap.
        let full = simulate_batch(&machine, &db, grid, &model, batch, SimOptions::full());

        for (variant, g, b) in [
            ("Megatron+HSDP baseline", base_grid, base),
            ("Perf model", grid, pm),
            ("+Kernel tuning", grid, tuned),
            ("+Comm overlap", grid, full),
        ] {
            bars.push(Bar {
                model: model.name.clone(),
                gcds,
                variant,
                grid: format!("{g}"),
                total_seconds: b.total_seconds,
                compute_seconds: b.compute_seconds,
                exposed_comm_seconds: b.exposed_comm_seconds,
                improvement_over_baseline_pct: 100.0 * (1.0 - b.total_seconds / base.total_seconds),
            });
        }
    }

    let rows: Vec<Vec<String>> = bars
        .iter()
        .map(|b| {
            vec![
                b.model.clone(),
                b.gcds.to_string(),
                b.variant.to_string(),
                b.grid.clone(),
                fmt_secs(b.total_seconds),
                fmt_secs(b.compute_seconds),
                fmt_secs(b.exposed_comm_seconds),
                format!("{:.1}%", b.improvement_over_baseline_pct),
            ]
        })
        .collect();
    print_table(
        "Fig. 7 — optimization ablation on Frontier (batch = 16.8M tokens)",
        &[
            "model",
            "GCDs",
            "variant",
            "config",
            "total",
            "compute",
            "exposed comm",
            "vs baseline",
        ],
        &rows,
    );
    println!("\nPaper: total improvements of 13-45% over the baseline; kernel tuning 2-4% at these sizes.");
    emit_json("fig7_ablation", &bars);
}
