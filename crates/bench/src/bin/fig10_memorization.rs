//! Figure 10: memorization as a function of model size and epochs.
//!
//! Runs the continued-pre-training protocol of Section VIII across a
//! model-size ladder (proxies for TinyLlama-1B … Llama-3.1-405B at CPU
//! scale — see DESIGN.md for the scale substitution) and reports the
//! exact-match rate per bucket (1 / 4 / 6 epochs, plus the untouched
//! control). The paper's shape targets: <1% for the small models,
//! emergence at the 70B scale (including catastrophic single-pass
//! memorization), and nonzero *control* memorization only for the
//! pretrained 405B-proxy.

use axonn_bench::emit_json;
use axonn_bench::memor::{ladder, report, trials_for};
use axonn_memorize::{run_scale_trials, ExperimentConfig, TrialStats};
use rayon::prelude::*;

fn main() {
    let cfg = ExperimentConfig::bench();
    let scales = ladder();
    let results: Vec<TrialStats> = scales
        .par_iter()
        .map(|s| run_scale_trials(s, &cfg, trials_for(s)))
        .collect();
    report(
        "Fig. 10 — exact-match memorization vs model size and epochs",
        &results,
    );
    println!("\nPaper shape: 1B-13B memorize <1%; 70B memorizes ~47-67% after 6 epochs and ~5%");
    println!("after a single pass (catastrophic); the 405B checkpoint already shows >10% on the");
    println!("untouched control bucket from pre-training.");
    emit_json("fig10_memorization", &results);
}
