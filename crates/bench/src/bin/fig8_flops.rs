//! Figure 8 + Table III: sustained bf16 flop/s for the weak-scaling runs,
//! as a percentage of the advertised and empirical peaks, side by side
//! with the paper's published values.

use axonn_bench::{emit_json, paper, print_table, series};
use axonn_sim::{weak_scaling_series, SimOptions};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    machine: String,
    gpus: usize,
    model: String,
    ours_pflops: f64,
    paper_pflops: Option<f64>,
    ours_pct_advertised: f64,
    paper_pct_advertised: Option<f64>,
    ours_pct_empirical: f64,
    paper_pct_empirical: Option<f64>,
}

fn main() {
    let batch = series::headline_batch();
    let mut out_rows: Vec<Row> = Vec::new();
    for machine_name in ["Perlmutter", "Frontier", "Alps"] {
        let (machine, db) = series::machine_with_db(machine_name);
        let pairs = series::weak_scaling_pairs(machine_name);
        let points = weak_scaling_series(&machine, &db, &pairs, batch, SimOptions::full());
        for p in points {
            let reference = paper::TABLE3
                .iter()
                .find(|r| r.machine == machine_name && r.gpus == p.gpus);
            out_rows.push(Row {
                machine: machine_name.to_string(),
                gpus: p.gpus,
                model: p.model.clone(),
                ours_pflops: p.model_flops_per_second / 1e15,
                paper_pflops: reference.map(|r| r.total_pflops),
                ours_pct_advertised: p.pct_advertised_peak,
                paper_pct_advertised: reference.map(|r| r.pct_advertised),
                ours_pct_empirical: p.pct_empirical_peak,
                paper_pct_empirical: reference.map(|r| r.pct_empirical),
            });
        }
    }

    let opt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.1}"));
    let rows: Vec<Vec<String>> = out_rows
        .iter()
        .map(|r| {
            vec![
                r.machine.clone(),
                r.gpus.to_string(),
                r.model.clone(),
                format!("{:.1}", r.ours_pflops),
                opt(r.paper_pflops),
                format!("{:.1}", r.ours_pct_advertised),
                opt(r.paper_pct_advertised),
                format!("{:.1}", r.ours_pct_empirical),
                opt(r.paper_pct_empirical),
            ]
        })
        .collect();
    print_table(
        "Fig. 8 / Table III — sustained bf16 flop/s (ours vs paper)",
        &[
            "machine", "GPUs", "model", "Pflop/s", "(paper)", "%adv", "(paper)", "%emp", "(paper)",
        ],
        &rows,
    );
    emit_json("fig8_table3_flops", &out_rows);
}
