//! CI serving-regression gate: push simulated client traffic through the
//! continuous-batching engine and compare latency/throughput medians
//! against the committed baseline.
//!
//! Usage:
//!   bench_serve [--requests N] [--clients N] [--check BASELINE.json]
//!               [--threshold F] [--write-baseline]
//!
//! Always writes `results/BENCH_serve.json`. With `--check`, exits
//! non-zero when the median TTFT rises or the median per-request decode
//! throughput falls by more than the threshold (default 20%) relative to
//! the baseline file. With `--write-baseline`, also refreshes
//! `results/bench_serve_baseline.json` (commit that file to move the
//! gate).

use std::path::PathBuf;
use std::process::ExitCode;

use axonn_bench::serve::{compare_serve, load_serve_report, run_serve_bench, ServeBenchConfig};
use axonn_bench::{emit_json, print_table};

const DEFAULT_THRESHOLD: f64 = 0.20;

fn main() -> ExitCode {
    let mut cfg = ServeBenchConfig::default();
    let mut check: Option<PathBuf> = None;
    let mut threshold = DEFAULT_THRESHOLD;
    let mut write_baseline = false;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--requests" => {
                cfg.load.total_requests = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests needs a positive integer");
            }
            "--clients" => {
                cfg.load.clients = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients needs a positive integer");
            }
            "--check" => {
                check = Some(PathBuf::from(argv.next().expect("--check needs a path")));
            }
            "--threshold" => {
                threshold = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threshold needs a fraction, e.g. 0.2");
            }
            "--write-baseline" => write_baseline = true,
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: bench_serve [--requests N] [--clients N] [--check BASELINE.json] \
                     [--threshold F] [--write-baseline]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let report = run_serve_bench(&cfg);
    print_table(
        "bench_serve — closed-loop continuous-batching engine",
        &["metric", "value"],
        &[
            vec![
                "requests completed / evicted".into(),
                format!("{} / {}", report.completed, report.evicted),
            ],
            vec![
                "overload rejections (retried)".into(),
                format!("{}", report.rejected_retries),
            ],
            vec![
                "engine steps / wall".into(),
                format!("{} / {:.2} s", report.engine_steps, report.wall_s),
            ],
            vec![
                "TTFT p50 / p99".into(),
                format!("{:.3} / {:.3} ms", report.ttft_p50_ms, report.ttft_p99_ms),
            ],
            vec![
                "per-request tokens/s p50 / p99".into(),
                format!(
                    "{:.0} / {:.0}",
                    report.tokens_per_s_p50, report.tokens_per_s_p99
                ),
            ],
            vec![
                "aggregate tokens/s".into(),
                format!("{:.0}", report.aggregate_tokens_per_s),
            ],
            vec![
                "clients / active slots".into(),
                format!("{} / {}", report.clients, report.max_active),
            ],
        ],
    );
    emit_json("BENCH_serve", &report);
    if write_baseline {
        emit_json("bench_serve_baseline", &report);
    }

    if let Some(baseline_path) = check {
        let baseline = match load_serve_report(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("[serve-gate] {e}");
                eprintln!(
                    "[serve-gate] regenerate with: cargo run --release -p axonn-bench \
                     --bin bench_serve -- --write-baseline"
                );
                return ExitCode::FAILURE;
            }
        };
        let verdict = compare_serve(&report, &baseline, threshold);
        println!(
            "[serve-gate] TTFT {:+.1}%, tokens/s drop {:+.1}% (gate {:+.0}%) vs {}",
            verdict.ttft_delta * 100.0,
            verdict.rate_delta * 100.0,
            verdict.threshold * 100.0,
            baseline_path.display(),
        );
        if verdict.regressed {
            eprintln!(
                "[serve-gate] FAIL: median TTFT or decode throughput regressed beyond {:.0}%",
                verdict.threshold * 100.0
            );
            return ExitCode::FAILURE;
        }
        println!("[serve-gate] PASS");
    }
    ExitCode::SUCCESS
}
