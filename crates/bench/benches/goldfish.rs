//! Goldfish-loss overhead: mask construction and masked vs unmasked
//! cross-entropy.

use axonn_lm::cross_entropy;
use axonn_memorize::{goldfish_mask, GoldfishParams};
use axonn_tensor::Matrix;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_goldfish(c: &mut Criterion) {
    let mut g = c.benchmark_group("goldfish");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let tokens: Vec<usize> = (0..4096).map(|i| (i * 31) % 512).collect();
    g.bench_function("mask_4096_tokens", |b| {
        b.iter(|| goldfish_mask(&tokens, GoldfishParams::paper()))
    });

    let logits = Matrix::random(512, 256, 1.0, 1);
    let targets: Vec<usize> = (0..512).map(|i| i % 256).collect();
    let mask = goldfish_mask(&targets, GoldfishParams::paper());
    g.bench_function("cross_entropy_unmasked", |b| {
        b.iter(|| cross_entropy(&logits, &targets, None).loss)
    });
    g.bench_function("cross_entropy_goldfish", |b| {
        b.iter(|| cross_entropy(&logits, &targets, Some(&mask)).loss)
    });
    g.finish();
}

criterion_group!(benches, bench_goldfish);
criterion_main!(benches);
