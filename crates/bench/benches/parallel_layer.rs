//! End-to-end 4D-parallel training-step benchmark (Algorithm 1 on real
//! threads) across grid shapes, including the overlap configurations.

use axonn_core::{Activation, GridTopology, Network4d, OverlapConfig};
use axonn_exec::run_spmd;
use axonn_tensor::Matrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

const DIMS: [usize; 3] = [64, 128, 64];

fn step(gx: usize, gy: usize, gz: usize, gd: usize, overlap: OverlapConfig) -> f32 {
    let world = gx * gy * gz * gd;
    let out = run_spmd(world, move |comm| {
        let grid = GridTopology::new(gx, gy, gz, gd, comm.rank());
        let mut net = Network4d::new(comm, grid, &DIMS, Activation::Gelu, 7, overlap, false);
        let x = Matrix::random(16, DIMS[0], 1.0, 1);
        let t = Matrix::random(16, DIMS[2], 1.0, 2);
        net.train_step(&x, &t, 0.01)
    });
    out[0]
}

fn bench_grids(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_train_step");
    g.measurement_time(Duration::from_secs(2)).sample_size(10);
    for &(gx, gy, gz, gd) in &[
        (1usize, 1usize, 1usize, 1usize),
        (2, 1, 1, 1),
        (1, 1, 2, 1),
        (2, 2, 2, 1),
    ] {
        let label = format!("{gx}x{gy}x{gz}x{gd}");
        g.bench_with_input(BenchmarkId::new("no_overlap", &label), &(), |b, _| {
            b.iter(|| step(gx, gy, gz, gd, OverlapConfig::default()))
        });
        g.bench_with_input(BenchmarkId::new("full_overlap", &label), &(), |b, _| {
            b.iter(|| step(gx, gy, gz, gd, OverlapConfig::all()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_grids);
criterion_main!(benches);
