//! Simulator throughput: one batch simulation and one full configuration
//! ranking, per call.

use axonn_cluster::{BandwidthDb, Machine};
use axonn_perfmodel::{rank_configs, Grid4d};
use axonn_sim::{simulate_batch, SimOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_sim(c: &mut Criterion) {
    let machine = Machine::frontier();
    let db = BandwidthDb::profile(&machine);
    let model = axonn_gpt::model_by_billions(20);
    let mut g = c.benchmark_group("simulator");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    g.bench_function("simulate_batch_20B_2048", |b| {
        b.iter(|| {
            simulate_batch(
                &machine,
                &db,
                Grid4d::new(8, 2, 16, 8),
                &model,
                1 << 22,
                SimOptions::full(),
            )
        })
    });
    g.bench_function("rank_configs_20B_2048", |b| {
        b.iter(|| rank_configs(&machine, &db, &model, 1 << 22, 2048, Some(51.2e9)).len())
    });
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
