//! Ring collective microbenchmarks across world sizes.

use axonn_collectives::ProcessGroup;
use axonn_exec::run_spmd;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

const ELEMS: usize = 1 << 14;

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring_collectives");
    g.measurement_time(Duration::from_secs(2)).sample_size(10);
    for &world in &[2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("all_reduce", world), &world, |b, &w| {
            b.iter(|| {
                run_spmd(w, move |comm| {
                    let group = ProcessGroup::new((0..w).collect());
                    let mut buf = vec![1.0f32; ELEMS];
                    comm.all_reduce(&group, &mut buf);
                    buf[0]
                })
            })
        });
        g.bench_with_input(BenchmarkId::new("all_gather", world), &world, |b, &w| {
            b.iter(|| {
                run_spmd(w, move |comm| {
                    let group = ProcessGroup::new((0..w).collect());
                    let shard = vec![1.0f32; ELEMS / w];
                    comm.all_gather(&group, &shard).len()
                })
            })
        });
        g.bench_with_input(
            BenchmarkId::new("reduce_scatter", world),
            &world,
            |b, &w| {
                b.iter(|| {
                    run_spmd(w, move |comm| {
                        let group = ProcessGroup::new((0..w).collect());
                        let buf = vec![1.0f32; ELEMS];
                        comm.reduce_scatter(&group, &buf).len()
                    })
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
