//! GEMM kernel microbenchmarks: the NN / NT / TN performance hierarchy
//! that the Section V-C kernel tuner exploits, plus the bf16 rounding
//! overhead of mixed precision.

use axonn_tensor::{gemm, gemm_bf16, MatMode, Matrix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_modes");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    for &n in &[64usize, 128, 256] {
        let a = Matrix::random(n, n, 1.0, 1);
        let b = Matrix::random(n, n, 1.0, 2);
        for mode in MatMode::ALL {
            g.bench_with_input(BenchmarkId::new(format!("{mode}"), n), &n, |bench, _| {
                bench.iter(|| gemm(mode, &a, &b))
            });
        }
    }
    g.finish();
}

fn bench_bf16(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_bf16");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let n = 128;
    let a = Matrix::random(n, n, 1.0, 3);
    let b = Matrix::random(n, n, 1.0, 4);
    g.bench_function("f32", |bench| bench.iter(|| gemm(MatMode::NN, &a, &b)));
    g.bench_function("bf16_mixed", |bench| {
        bench.iter(|| gemm_bf16(MatMode::NN, &a, &b))
    });
    g.finish();
}

criterion_group!(benches, bench_modes, bench_bf16);
criterion_main!(benches);
