//! Token sampling: greedy argmax (the training plane's exact-match
//! evaluator) and temperature/top-k for serving traffic.

use axonn_lm::decode;
use rand::rngs::StdRng;
use rand::Rng;

/// How a stream picks its next token from a logits row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sampling {
    /// Deterministic argmax — bitwise the training evaluator's choice.
    Greedy,
    /// Sample among the `k` highest logits after dividing by
    /// `temperature`. `k = 1` degenerates to greedy.
    TopK { k: usize, temperature: f32 },
}

/// Pick a token from `row` under `sampling`, drawing randomness (top-k
/// only) from `rng`.
///
/// # Panics
/// If `row` is empty, `k == 0`, or `temperature <= 0`.
pub fn sample(row: &[f32], sampling: Sampling, rng: &mut StdRng) -> usize {
    match sampling {
        Sampling::Greedy => decode::argmax(row),
        Sampling::TopK { k, temperature } => {
            assert!(k > 0, "top-k needs k >= 1");
            assert!(temperature > 0.0, "temperature must be positive");
            let k = k.min(row.len());
            if k == 1 {
                return decode::argmax(row);
            }
            // Indices of the k largest logits (ties broken toward the
            // lower index, matching argmax's total_cmp order).
            let mut idx: Vec<usize> = (0..row.len()).collect();
            idx.sort_by(|&a, &b| row[b].total_cmp(&row[a]).then(a.cmp(&b)));
            idx.truncate(k);
            let maxv = row[idx[0]];
            let weights: Vec<f64> = idx
                .iter()
                .map(|&i| (((row[i] - maxv) / temperature) as f64).exp())
                .collect();
            let total: f64 = weights.iter().sum();
            let mut u = rng.next_unit() * total;
            for (&i, w) in idx.iter().zip(&weights) {
                if u < *w {
                    return i;
                }
                u -= w;
            }
            idx[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn top1_equals_greedy() {
        let row = [0.1f32, 2.0, -1.0, 1.9];
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(
                sample(
                    &row,
                    Sampling::TopK {
                        k: 1,
                        temperature: 0.5
                    },
                    &mut rng
                ),
                1
            );
        }
    }

    #[test]
    fn topk_only_emits_topk_tokens_and_prefers_the_peak() {
        let row = [0.0f32, 5.0, 4.5, -3.0, 1.0];
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 5];
        for _ in 0..2000 {
            let t = sample(
                &row,
                Sampling::TopK {
                    k: 2,
                    temperature: 1.0,
                },
                &mut rng,
            );
            counts[t] += 1;
        }
        assert_eq!(counts[0] + counts[3] + counts[4], 0, "{counts:?}");
        assert!(counts[1] > counts[2], "{counts:?}");
        assert!(counts[2] > 0, "{counts:?}");
    }

    #[test]
    fn low_temperature_sharpens() {
        let row = [1.0f32, 1.2, 0.8];
        let mut rng = StdRng::seed_from_u64(3);
        let sharp = (0..500)
            .filter(|_| {
                sample(
                    &row,
                    Sampling::TopK {
                        k: 3,
                        temperature: 0.05,
                    },
                    &mut rng,
                ) == 1
            })
            .count();
        assert!(sharp > 490, "sharp sampling picked the peak {sharp}/500");
    }
}
