//! Continuous batching: a request queue in front of a bounded set of
//! KV-cache slabs, re-formed every decode step.
//!
//! Unlike static batching (wait for B requests, run them lock-step to
//! completion), the engine admits and retires streams *per step*:
//!
//! * admission is strict FIFO under a per-step token budget — a prefill
//!   costs its prompt length, a decode costs one token per live stream —
//!   so short requests never starve behind long ones and a head-of-line
//!   prompt longer than the budget is still admitted once the engine
//!   drains (liveness over throughput);
//! * KV slabs are preallocated at construction and recycled on
//!   completion or eviction, so steady-state serving does no allocation
//!   proportional to traffic;
//! * requests carry an optional step deadline; expired streams are
//!   evicted (slab released, partial output returned) instead of
//!   dragging the batch;
//! * a full queue rejects new work with typed
//!   [`ServeError::Overloaded`] rather than growing without bound.

use crate::metrics::ServeMetrics;
use crate::sampler::{self, Sampling};
use axonn_lm::decode::{self, KvCache};
use axonn_lm::Gpt;
use axonn_trace::LiveRegistry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// Admission-time rejection of a request. Everything here is the
/// *caller's* problem (malformed request or saturated server) — engine
/// bugs panic instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The prompt was empty.
    EmptyPrompt,
    /// `prompt_len + max_new_tokens` does not fit the model window.
    PromptTooLong {
        prompt_len: usize,
        max_new_tokens: usize,
        seq_len: usize,
    },
    /// The request queue is at capacity; retry later.
    Overloaded { queue_depth: usize },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::EmptyPrompt => write!(f, "empty prompt"),
            ServeError::PromptTooLong {
                prompt_len,
                max_new_tokens,
                seq_len,
            } => write!(
                f,
                "prompt ({prompt_len}) + max_new_tokens ({max_new_tokens}) exceeds the \
                 model window ({seq_len})"
            ),
            ServeError::Overloaded { queue_depth } => {
                write!(f, "server overloaded: queue at capacity ({queue_depth})")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Engine sizing and sampling policy.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Queue slots before [`ServeError::Overloaded`].
    pub max_queue: usize,
    /// Concurrent decode streams — one preallocated KV slab each.
    pub max_active: usize,
    /// Per-step token budget shared by prefills (prompt length) and
    /// decodes (one per stream).
    pub max_batch_tokens: usize,
    pub sampling: Sampling,
    /// Base RNG seed; request `id` is folded in so streams differ.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_queue: 64,
            max_active: 8,
            max_batch_tokens: 64,
            sampling: Sampling::Greedy,
            seed: 0,
        }
    }
}

/// A request as submitted by a client.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    pub prompt: Vec<usize>,
    pub max_new_tokens: usize,
    /// Evict if not finished within this many engine steps of
    /// submission. `None` never expires.
    pub deadline_steps: Option<u64>,
}

/// Why a stream left the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishReason {
    /// Generated its full `max_new_tokens`.
    Completed,
    /// Deadline passed while queued or decoding; `tokens` holds whatever
    /// was produced.
    DeadlineExpired,
}

/// A finished (or evicted) request, with its latency accounting.
#[derive(Debug, Clone)]
pub struct Completion {
    pub id: u64,
    pub prompt_len: usize,
    pub tokens: Vec<usize>,
    pub reason: FinishReason,
    pub submitted_step: u64,
    /// Step the first token was produced on (`None` if evicted while
    /// still queued).
    pub first_token_step: Option<u64>,
    pub finished_step: u64,
    /// Wall-clock submit → first token.
    pub ttft_s: Option<f64>,
    /// Engine steps submit → first token.
    pub ttft_steps: Option<u64>,
    /// Wall-clock submit → finish.
    pub latency_s: f64,
}

struct Queued {
    id: u64,
    prompt: Vec<usize>,
    max_new_tokens: usize,
    deadline: Option<u64>,
    submitted_step: u64,
    submitted_at: Instant,
}

struct ActiveStream {
    id: u64,
    cache: KvCache,
    rng: StdRng,
    tokens: Vec<usize>,
    prompt_len: usize,
    max_new_tokens: usize,
    deadline: Option<u64>,
    submitted_step: u64,
    admitted_step: u64,
    first_token_at: Instant,
    submitted_at: Instant,
}

/// The continuous-batching engine. Single-threaded by design: callers
/// drive it with [`ServeEngine::step`], which makes scheduling decisions
/// deterministic and testable; wall-clock only enters through latency
/// *measurement*, never through scheduling.
pub struct ServeEngine {
    model: Arc<Gpt>,
    cfg: ServeConfig,
    queue: VecDeque<Queued>,
    active: Vec<ActiveStream>,
    free_slabs: Vec<KvCache>,
    completions: Vec<Completion>,
    metrics: ServeMetrics,
    step: u64,
    next_id: u64,
    rr_cursor: usize,
    total_generated: u64,
    started: Instant,
}

impl ServeEngine {
    /// Build an engine over a shared model, preallocating
    /// `cfg.max_active` KV slabs and registering `serve.*` metrics in
    /// `registry`.
    pub fn new(model: Arc<Gpt>, cfg: ServeConfig, registry: &LiveRegistry) -> ServeEngine {
        assert!(cfg.max_active > 0, "need at least one active slot");
        assert!(cfg.max_queue > 0, "need at least one queue slot");
        assert!(cfg.max_batch_tokens > 0, "need a positive token budget");
        let free_slabs = (0..cfg.max_active)
            .map(|_| KvCache::for_model(&model.cfg))
            .collect();
        ServeEngine {
            metrics: ServeMetrics::new(registry),
            model,
            cfg,
            queue: VecDeque::new(),
            active: Vec::new(),
            free_slabs,
            completions: Vec::new(),
            step: 0,
            next_id: 0,
            rr_cursor: 0,
            total_generated: 0,
            started: Instant::now(),
        }
    }

    /// Enqueue a request. Returns its id, or a typed rejection.
    pub fn submit(&mut self, req: ServeRequest) -> Result<u64, ServeError> {
        self.metrics.submitted.inc();
        if req.prompt.is_empty() || req.max_new_tokens == 0 {
            self.metrics.rejected.inc();
            return Err(ServeError::EmptyPrompt);
        }
        if req.prompt.len() + req.max_new_tokens > self.model.cfg.seq_len {
            self.metrics.rejected.inc();
            return Err(ServeError::PromptTooLong {
                prompt_len: req.prompt.len(),
                max_new_tokens: req.max_new_tokens,
                seq_len: self.model.cfg.seq_len,
            });
        }
        if self.queue.len() >= self.cfg.max_queue {
            self.metrics.rejected.inc();
            return Err(ServeError::Overloaded {
                queue_depth: self.queue.len(),
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push_back(Queued {
            id,
            prompt: req.prompt,
            max_new_tokens: req.max_new_tokens,
            deadline: req.deadline_steps.map(|d| self.step + d),
            submitted_step: self.step,
            submitted_at: Instant::now(),
        });
        self.metrics.queue_depth.set(self.queue.len() as f64);
        Ok(id)
    }

    /// Run one decode step: evict expired streams, admit from the queue
    /// under the token budget, then decode one token for each live
    /// stream the remaining budget covers. Returns the number of tokens
    /// produced this step.
    pub fn step(&mut self) -> usize {
        let t0 = Instant::now();
        self.step += 1;
        let now = self.step;
        self.evict_expired(now);

        let mut budget = self.cfg.max_batch_tokens;
        let mut produced = 0usize;

        // --- Admission: strict FIFO, bounded by slabs and budget. A
        // head-of-line prompt longer than the whole budget is admitted
        // anyway when the engine is otherwise empty, so it cannot starve.
        let mut admitted_any = false;
        while self.active.len() < self.cfg.max_active && !self.free_slabs.is_empty() {
            let Some(front) = self.queue.front() else {
                break;
            };
            let cost = front.prompt.len();
            let engine_idle = self.active.is_empty() && !admitted_any;
            if cost > budget && !engine_idle {
                break;
            }
            budget = budget.saturating_sub(cost);
            admitted_any = true;
            let q = self.queue.pop_front().expect("front() just saw it");
            let mut cache = self.free_slabs.pop().expect("loop condition");
            let logits = decode::prefill(&self.model, &q.prompt, &mut cache);
            let mut rng =
                StdRng::seed_from_u64(self.cfg.seed ^ q.id.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let first =
                sampler::sample(logits.row(q.prompt.len() - 1), self.cfg.sampling, &mut rng);
            produced += 1;
            self.total_generated += 1;
            let ttft = q.submitted_at.elapsed().as_secs_f64();
            self.metrics.admitted.inc();
            self.metrics.prefill_tokens.add(cost as u64);
            self.metrics.decoded_tokens.inc();
            self.metrics.ttft_seconds.observe(ttft);
            let stream = ActiveStream {
                id: q.id,
                cache,
                rng,
                tokens: vec![first],
                prompt_len: q.prompt.len(),
                max_new_tokens: q.max_new_tokens,
                deadline: q.deadline,
                submitted_step: q.submitted_step,
                admitted_step: now,
                first_token_at: Instant::now(),
                submitted_at: q.submitted_at,
            };
            if stream.tokens.len() >= stream.max_new_tokens {
                self.finish(stream, now, FinishReason::Completed);
            } else {
                self.active.push(stream);
            }
        }

        // --- Decode: one token per live stream, round-robin from the
        // cursor so a budget squeeze rotates rather than always skipping
        // the same tail.
        let n = self.active.len();
        let mut finished_idx: Vec<usize> = Vec::new();
        let mut squeezed = false;
        for i in 0..n {
            let idx = (self.rr_cursor + i) % n;
            let s = &mut self.active[idx];
            if s.admitted_step == now {
                continue; // prefill already produced this step's token
            }
            if budget == 0 {
                self.rr_cursor = idx;
                squeezed = true;
                break;
            }
            budget -= 1;
            let fed = *s.tokens.last().expect("admission pushed a token");
            let row = decode::decode_step(&self.model, fed, &mut s.cache);
            let next = sampler::sample(&row, self.cfg.sampling, &mut s.rng);
            s.tokens.push(next);
            produced += 1;
            self.total_generated += 1;
            self.metrics.decoded_tokens.inc();
            if s.tokens.len() >= s.max_new_tokens {
                finished_idx.push(idx);
            }
        }
        if !squeezed && n > 0 {
            self.rr_cursor = (self.rr_cursor + 1) % n;
        }
        // Retire finished streams (descending index keeps swap_remove sound).
        finished_idx.sort_unstable_by(|a, b| b.cmp(a));
        for idx in finished_idx {
            let s = self.active.swap_remove(idx);
            self.finish(s, now, FinishReason::Completed);
        }
        if !self.active.is_empty() {
            self.rr_cursor %= self.active.len();
        } else {
            self.rr_cursor = 0;
        }

        self.metrics.queue_depth.set(self.queue.len() as f64);
        self.metrics.in_flight.set(self.active.len() as f64);
        let elapsed = self.started.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            self.metrics
                .tokens_per_s
                .set(self.total_generated as f64 / elapsed);
        }
        self.metrics
            .step_seconds
            .observe(t0.elapsed().as_secs_f64());
        produced
    }

    /// Step until both the queue and the active set drain, up to
    /// `max_steps`. Returns the number of steps taken.
    pub fn run_until_idle(&mut self, max_steps: u64) -> u64 {
        let mut taken = 0;
        while taken < max_steps && !(self.queue.is_empty() && self.active.is_empty()) {
            self.step();
            taken += 1;
        }
        taken
    }

    /// Take all completions accumulated since the last drain.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    pub fn in_flight(&self) -> usize {
        self.active.len()
    }

    pub fn free_slabs(&self) -> usize {
        self.free_slabs.len()
    }

    pub fn current_step(&self) -> u64 {
        self.step
    }

    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    pub fn model(&self) -> &Arc<Gpt> {
        &self.model
    }

    fn evict_expired(&mut self, now: u64) {
        // Queued requests whose deadline passed before admission.
        let mut expired: Vec<Queued> = Vec::new();
        self.queue.retain_mut(|q| {
            let dead = q.deadline.is_some_and(|d| now > d);
            if dead {
                expired.push(Queued {
                    id: q.id,
                    prompt: std::mem::take(&mut q.prompt),
                    max_new_tokens: q.max_new_tokens,
                    deadline: q.deadline,
                    submitted_step: q.submitted_step,
                    submitted_at: q.submitted_at,
                });
            }
            !dead
        });
        for q in expired {
            self.metrics.evicted.inc();
            self.completions.push(Completion {
                id: q.id,
                prompt_len: q.prompt.len(),
                tokens: Vec::new(),
                reason: FinishReason::DeadlineExpired,
                submitted_step: q.submitted_step,
                first_token_step: None,
                finished_step: now,
                ttft_s: None,
                ttft_steps: None,
                latency_s: q.submitted_at.elapsed().as_secs_f64(),
            });
        }
        // Active streams past their deadline: release the slab, return
        // the partial output.
        let mut idx = 0;
        while idx < self.active.len() {
            if self.active[idx].deadline.is_some_and(|d| now > d) {
                let s = self.active.swap_remove(idx);
                self.metrics.evicted.inc();
                self.finish(s, now, FinishReason::DeadlineExpired);
            } else {
                idx += 1;
            }
        }
        if !self.active.is_empty() {
            self.rr_cursor %= self.active.len();
        } else {
            self.rr_cursor = 0;
        }
    }

    /// Retire a stream: recycle its slab and record the completion.
    fn finish(&mut self, mut s: ActiveStream, now: u64, reason: FinishReason) {
        s.cache.reset();
        self.free_slabs.push(s.cache);
        if reason == FinishReason::Completed {
            self.metrics.completed.inc();
        }
        let latency_s = s.submitted_at.elapsed().as_secs_f64();
        self.metrics.latency_seconds.observe(latency_s);
        self.completions.push(Completion {
            id: s.id,
            prompt_len: s.prompt_len,
            tokens: s.tokens,
            reason,
            submitted_step: s.submitted_step,
            first_token_step: Some(s.admitted_step),
            finished_step: now,
            ttft_s: Some((s.first_token_at - s.submitted_at).as_secs_f64()),
            ttft_steps: Some(s.admitted_step - s.submitted_step),
            latency_s,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axonn_lm::GptModelConfig;

    fn toy_model() -> Arc<Gpt> {
        Arc::new(Gpt::new(GptModelConfig {
            vocab: 12,
            seq_len: 12,
            dim: 16,
            n_heads: 2,
            n_layers: 2,
            seed: 5,
        }))
    }

    fn engine(cfg: ServeConfig) -> ServeEngine {
        ServeEngine::new(toy_model(), cfg, &LiveRegistry::new_enabled(true))
    }

    fn req(prompt: &[usize], max_new: usize) -> ServeRequest {
        ServeRequest {
            prompt: prompt.to_vec(),
            max_new_tokens: max_new,
            deadline_steps: None,
        }
    }

    #[test]
    fn rejects_malformed_requests_with_typed_errors() {
        let mut e = engine(ServeConfig::default());
        assert_eq!(e.submit(req(&[], 3)), Err(ServeError::EmptyPrompt));
        assert_eq!(e.submit(req(&[1, 2], 0)), Err(ServeError::EmptyPrompt));
        assert_eq!(
            e.submit(req(&[0; 10], 5)),
            Err(ServeError::PromptTooLong {
                prompt_len: 10,
                max_new_tokens: 5,
                seq_len: 12
            })
        );
    }

    #[test]
    fn full_queue_returns_overloaded() {
        let mut e = engine(ServeConfig {
            max_queue: 2,
            ..ServeConfig::default()
        });
        e.submit(req(&[1], 2)).unwrap();
        e.submit(req(&[2], 2)).unwrap();
        assert_eq!(
            e.submit(req(&[3], 2)),
            Err(ServeError::Overloaded { queue_depth: 2 })
        );
        // Draining the queue reopens admission.
        e.run_until_idle(100);
        e.submit(req(&[3], 2)).unwrap();
    }

    #[test]
    fn serves_greedy_exactly_like_the_model_oracle() {
        let model = toy_model();
        let mut e = ServeEngine::new(
            model.clone(),
            ServeConfig::default(),
            &LiveRegistry::new_enabled(true),
        );
        let prompt = [1usize, 4, 2];
        let id = e.submit(req(&prompt, 6)).unwrap();
        e.run_until_idle(100);
        let done = e.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        assert_eq!(done[0].reason, FinishReason::Completed);
        let mut oracle = Gpt::new(model.cfg.clone());
        assert_eq!(done[0].tokens, oracle.greedy_continuation(&prompt, 6));
    }

    #[test]
    fn fifo_admission_means_no_starvation() {
        // More requests than slots, tight budget: every request still
        // completes and first tokens appear in submission order.
        let mut e = engine(ServeConfig {
            max_queue: 32,
            max_active: 2,
            max_batch_tokens: 4,
            ..ServeConfig::default()
        });
        let mut ids = Vec::new();
        for i in 0..10 {
            ids.push(e.submit(req(&[i % 12, (i + 1) % 12], 4)).unwrap());
        }
        let steps = e.run_until_idle(10_000);
        assert!(steps < 10_000, "engine failed to drain");
        let mut done = e.drain_completions();
        assert_eq!(done.len(), 10);
        assert!(done.iter().all(|c| c.reason == FinishReason::Completed));
        assert!(done.iter().all(|c| c.tokens.len() == 4));
        done.sort_by_key(|c| c.id);
        for pair in done.windows(2) {
            assert!(
                pair[0].first_token_step <= pair[1].first_token_step,
                "later submission got its first token earlier: {:?} vs {:?}",
                pair[0].first_token_step,
                pair[1].first_token_step
            );
        }
    }

    #[test]
    fn oversized_prompt_is_admitted_when_engine_is_idle() {
        // Prompt longer than the whole per-step budget must not starve.
        let mut e = engine(ServeConfig {
            max_batch_tokens: 2,
            ..ServeConfig::default()
        });
        e.submit(req(&[0, 1, 2, 3, 4, 5], 3)).unwrap();
        e.run_until_idle(100);
        let done = e.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].reason, FinishReason::Completed);
    }

    #[test]
    fn deadline_eviction_releases_slabs_and_returns_partials() {
        let mut e = engine(ServeConfig {
            max_active: 2,
            max_batch_tokens: 64,
            ..ServeConfig::default()
        });
        assert_eq!(e.free_slabs(), 2);
        // A long stream with a 2-step deadline and a queued one behind it.
        e.submit(ServeRequest {
            prompt: vec![1, 2],
            max_new_tokens: 9,
            deadline_steps: Some(2),
        })
        .unwrap();
        e.step();
        assert_eq!(e.in_flight(), 1);
        assert_eq!(e.free_slabs(), 1);
        e.step();
        e.step(); // step 3 > deadline (submitted at step 0 + 2)
        let done = e.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].reason, FinishReason::DeadlineExpired);
        assert!(!done[0].tokens.is_empty(), "partial output returned");
        assert!(done[0].tokens.len() < 9);
        assert_eq!(e.in_flight(), 0);
        assert_eq!(e.free_slabs(), 2, "evicted slab back in the pool");
    }

    #[test]
    fn queued_requests_can_expire_before_admission() {
        let mut e = engine(ServeConfig {
            max_active: 1,
            ..ServeConfig::default()
        });
        // Occupy the only slab with a long stream, then queue a request
        // that expires before a slab frees up.
        e.submit(req(&[1, 2], 9)).unwrap();
        e.step();
        e.submit(ServeRequest {
            prompt: vec![3],
            max_new_tokens: 2,
            deadline_steps: Some(1),
        })
        .unwrap();
        e.run_until_idle(100);
        let done = e.drain_completions();
        assert_eq!(done.len(), 2);
        let expired = done
            .iter()
            .find(|c| c.reason == FinishReason::DeadlineExpired)
            .expect("queued request expired");
        assert!(expired.tokens.is_empty());
        assert_eq!(expired.first_token_step, None);
    }

    #[test]
    fn slab_accounting_is_conserved_every_step() {
        let mut e = engine(ServeConfig {
            max_queue: 64,
            max_active: 3,
            max_batch_tokens: 5,
            ..ServeConfig::default()
        });
        for i in 0..20 {
            e.submit(req(&[i % 12], 1 + (i % 5))).unwrap();
        }
        for _ in 0..200 {
            e.step();
            assert_eq!(e.free_slabs() + e.in_flight(), 3);
            if e.queue_depth() == 0 && e.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(e.drain_completions().len(), 20);
    }

    #[test]
    fn metrics_reflect_the_run() {
        let mut e = engine(ServeConfig::default());
        e.submit(req(&[1, 2], 3)).unwrap();
        e.submit(req(&[], 3)).ok();
        e.run_until_idle(100);
        let snap = e.metrics().registry().snapshot();
        assert_eq!(snap.counters["serve.requests.submitted"], 2);
        assert_eq!(snap.counters["serve.requests.rejected"], 1);
        assert_eq!(snap.counters["serve.requests.admitted"], 1);
        assert_eq!(snap.counters["serve.requests.completed"], 1);
        assert_eq!(snap.counters["serve.tokens.prefill"], 2);
        assert_eq!(snap.counters["serve.tokens.decoded"], 3);
        assert!(snap.histograms.contains_key("serve.ttft.seconds"));
    }
}
