//! The serving plane: turn a trained checkpoint into a request-serving
//! inference engine.
//!
//! The training crates stop at `lm::Checkpoint`; this crate is what the
//! north star's "heavy traffic" phase runs on top of it:
//!
//! * [`session`] — [`DecodeSession`]: one client stream over a shared
//!   immutable [`axonn_lm::Gpt`], backed by the KV-cached decode path in
//!   `lm::decode` (bitwise identical to full recompute), plus model
//!   loading from `lm::Checkpoint` files and `ft`-style sharded
//!   checkpoint directories.
//! * [`scheduler`] — [`ServeEngine`]: a continuous-batching scheduler.
//!   Requests queue FIFO, are admitted into a bounded set of KV-cache
//!   slabs under a per-step token budget (prefill counts its prompt
//!   length, decode counts one token per stream), evicted when their
//!   deadline passes, and rejected with typed [`ServeError::Overloaded`]
//!   when the queue is full.
//! * [`sampler`] — greedy and temperature/top-k sampling.
//! * [`tp`] — tensor-parallel decode: Megatron-style head/MLP sharding
//!   over the `core` grid's X group, partial sums folded with pooled
//!   all-reduces inside `exec::run_spmd_on`, every rank emitting the
//!   same replicated token stream.
//! * [`load`] — a closed-loop load generator (N clients, Poisson
//!   arrivals via exponential inter-arrival times) measuring TTFT and
//!   per-request decode throughput percentiles.
//! * [`metrics`] — `serve.*` counters/gauges/histograms in the
//!   `trace::live` registry, so `axonnctl monitor` shows the serving
//!   plane next to the training plane.

pub mod load;
pub mod metrics;
pub mod sampler;
pub mod scheduler;
pub mod session;
pub mod tp;

pub use load::{percentile, run_load, LoadConfig, LoadOutcome};
pub use metrics::ServeMetrics;
pub use sampler::Sampling;
pub use scheduler::{Completion, FinishReason, ServeConfig, ServeEngine, ServeError, ServeRequest};
pub use session::{load_model, load_sharded, save_sharded, DecodeSession};
pub use tp::{extract_tp_decode_schedule, tp_greedy_spmd, TpShard};
