//! One client stream over a shared immutable model, plus the model
//! loading paths serving starts from: a single `lm::Checkpoint` JSON
//! file, or an `ft`-style sharded checkpoint directory (per-rank shard
//! files + rank-0 manifest, atomic-rename commit, per-tensor checksums).

use crate::sampler::{self, Sampling};
use axonn_ft::checkpoint::{
    CheckpointStore, Manifest, ShardEntry, MANIFEST_MAGIC, MANIFEST_VERSION,
};
use axonn_lm::checkpoint::tensor_name;
use axonn_lm::decode::{self, KvCache};
use axonn_lm::{Checkpoint, Gpt};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::sync::Arc;

/// A single decode stream: prompt prefilled once, then one cached-KV
/// step per token. The model is shared (`Arc`) and never mutated, so any
/// number of sessions decode concurrently from one weight set.
pub struct DecodeSession {
    model: Arc<Gpt>,
    cache: KvCache,
    sampling: Sampling,
    rng: StdRng,
    tokens: Vec<usize>,
    prompt_len: usize,
    last_row: Vec<f32>,
}

impl DecodeSession {
    /// Prefill `prompt` and sample the first new token.
    ///
    /// # Panics
    /// If the prompt is empty or exceeds the model window.
    pub fn start(model: Arc<Gpt>, prompt: &[usize], sampling: Sampling, seed: u64) -> Self {
        let mut cache = KvCache::for_model(&model.cfg);
        let logits = decode::prefill(&model, prompt, &mut cache);
        let mut rng = StdRng::seed_from_u64(seed);
        let last_row = logits.row(prompt.len() - 1).to_vec();
        let first = sampler::sample(&last_row, sampling, &mut rng);
        DecodeSession {
            model,
            cache,
            sampling,
            rng,
            tokens: vec![first],
            prompt_len: prompt.len(),
            last_row,
        }
    }

    /// Decode one more token. Returns `None` when the window is full.
    pub fn step(&mut self) -> Option<usize> {
        if self.cache.remaining() == 0 {
            return None;
        }
        let fed = *self.tokens.last().expect("start() sampled a token");
        self.last_row = decode::decode_step(&self.model, fed, &mut self.cache);
        let next = sampler::sample(&self.last_row, self.sampling, &mut self.rng);
        self.tokens.push(next);
        Some(next)
    }

    /// Tokens generated so far (prompt excluded).
    pub fn generated(&self) -> &[usize] {
        &self.tokens
    }

    pub fn prompt_len(&self) -> usize {
        self.prompt_len
    }

    /// The most recent logits row — exposed for tests and rerankers.
    pub fn last_logits(&self) -> &[f32] {
        &self.last_row
    }

    /// Cache slab footprint of this stream.
    pub fn cache_bytes(&self) -> usize {
        self.cache.approx_bytes()
    }
}

/// Load a model from a single `lm::Checkpoint` JSON file, verifying the
/// envelope and every tensor checksum.
pub fn load_model(path: impl AsRef<Path>) -> Result<Arc<Gpt>, String> {
    let ck = Checkpoint::load(path)?;
    Ok(Arc::new(ck.restore()?))
}

/// Split a captured checkpoint across `shards` rank files in an
/// `ft::CheckpointStore` directory: contiguous runs of the parameter
/// list per rank, rank-0 manifest committed last by atomic rename. The
/// manifest's `dims` carry the GPT architecture
/// `[vocab, seq_len, dim, n_heads, n_layers]`.
pub fn save_sharded(ck: &Checkpoint, dir: impl AsRef<Path>, shards: usize) -> Result<(), String> {
    assert!(shards > 0, "need at least one shard");
    ck.verify()?;
    let store = CheckpointStore::new(dir.as_ref());
    let n = ck.params.len();
    let mut entries = Vec::with_capacity(shards);
    for rank in 0..shards {
        let (lo, hi) = shard_range(n, shards, rank);
        let slice: Vec<&axonn_tensor::Matrix> = ck.params[lo..hi].iter().collect();
        let checksums = store
            .save_shard(0, rank, &slice)
            .map_err(|e| format!("save shard {rank}: {e}"))?;
        entries.push(ShardEntry {
            rank: rank as u64,
            x: rank as u64,
            y: 0,
            z: 0,
            d: 0,
            layer_checksums: checksums.iter().map(|c| format!("{c:016x}")).collect(),
        });
    }
    let manifest = Manifest {
        magic: MANIFEST_MAGIC.to_string(),
        version: MANIFEST_VERSION,
        step: 0,
        seed: ck.seed,
        gx: shards as u64,
        gy: 1,
        gz: 1,
        gd: 1,
        dims: vec![
            ck.vocab as u64,
            ck.seq_len as u64,
            ck.dim as u64,
            ck.n_heads as u64,
            ck.n_layers as u64,
        ],
        batch_rows: 0,
        shards: entries,
    };
    store
        .save_manifest(&manifest)
        .map_err(|e| format!("commit manifest: {e}"))
}

/// Reassemble a model from a sharded checkpoint directory written by
/// [`save_sharded`]: every shard file is checksum-verified against the
/// manifest, and per-tensor errors name the failing tensor.
pub fn load_sharded(dir: impl AsRef<Path>) -> Result<Arc<Gpt>, String> {
    let store = CheckpointStore::new(dir.as_ref());
    let step = store
        .latest_step()
        .ok_or_else(|| format!("no committed checkpoint under {}", dir.as_ref().display()))?;
    let manifest = store.manifest(step).map_err(|e| e.to_string())?;
    if manifest.dims.len() != 5 {
        return Err(format!(
            "manifest dims {:?}: expected [vocab, seq_len, dim, n_heads, n_layers]",
            manifest.dims
        ));
    }
    let n_layers = manifest.dims[4] as usize;
    let shards = manifest.grid().gpus();
    let mut params = Vec::new();
    for rank in 0..shards {
        let shard = store.load_shard(&manifest, rank).map_err(|e| {
            let base = params.len();
            format!(
                "shard {rank} (tensors from {} ({})): {e}",
                base,
                tensor_name(base, n_layers)
            )
        })?;
        params.extend(shard.layers);
    }
    let param_checksums = params
        .iter()
        .map(|m: &axonn_tensor::Matrix| format!("{:016x}", m.fnv1a64()))
        .collect();
    let ck = Checkpoint {
        magic: axonn_lm::checkpoint::CHECKPOINT_MAGIC.to_string(),
        version: axonn_lm::checkpoint::CHECKPOINT_VERSION,
        vocab: manifest.dims[0] as usize,
        seq_len: manifest.dims[1] as usize,
        dim: manifest.dims[2] as usize,
        n_heads: manifest.dims[3] as usize,
        n_layers,
        seed: manifest.seed,
        params,
        param_checksums,
    };
    Ok(Arc::new(ck.restore()?))
}

/// Contiguous parameter range `[lo, hi)` of rank `r` of `shards`.
fn shard_range(n: usize, shards: usize, r: usize) -> (usize, usize) {
    let base = n / shards;
    let extra = n % shards;
    let lo = r * base + r.min(extra);
    let hi = lo + base + usize::from(r < extra);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use axonn_lm::GptModelConfig;

    fn toy_model() -> Arc<Gpt> {
        Arc::new(Gpt::new(GptModelConfig {
            vocab: 12,
            seq_len: 10,
            dim: 16,
            n_heads: 2,
            n_layers: 2,
            seed: 5,
        }))
    }

    #[test]
    fn greedy_session_matches_model_continuation() {
        let model = toy_model();
        let prompt = [1usize, 4, 2];
        let mut session = DecodeSession::start(model.clone(), &prompt, Sampling::Greedy, 0);
        for _ in 1..5 {
            session.step().expect("window has room");
        }
        let mut reference = Gpt::new(model.cfg.clone());
        let want = reference.greedy_continuation(&prompt, 5);
        assert_eq!(session.generated(), &want[..]);
    }

    #[test]
    fn sessions_share_one_model_across_threads() {
        let model = toy_model();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let m = model.clone();
                std::thread::spawn(move || {
                    let mut s = DecodeSession::start(
                        m,
                        &[i % 12, (i + 3) % 12],
                        Sampling::Greedy,
                        i as u64,
                    );
                    while s.step().is_some() {}
                    s.generated().to_vec()
                })
            })
            .collect();
        let outs: Vec<Vec<usize>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Same prompts decode identically regardless of interleaving.
        let mut again = DecodeSession::start(model, &[0, 3], Sampling::Greedy, 0);
        while again.step().is_some() {}
        assert_eq!(outs[0], again.generated());
    }

    #[test]
    fn sharded_round_trip_preserves_behaviour() {
        let mut model = Gpt::new(toy_model().cfg.clone());
        let ck = Checkpoint::capture(&mut model);
        let dir = std::env::temp_dir().join(format!("axonn_serve_shard_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        save_sharded(&ck, &dir, 3).unwrap();
        let restored = load_sharded(&dir).unwrap();
        let original = Arc::new(ck.restore().unwrap());
        let tokens = [0usize, 1, 2, 3];
        let run = |m: Arc<Gpt>| {
            let mut s = DecodeSession::start(m, &tokens, Sampling::Greedy, 0);
            while s.step().is_some() {}
            s.generated().to_vec()
        };
        assert_eq!(run(original), run(restored));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_shard_is_rejected_with_tensor_context() {
        let mut model = Gpt::new(toy_model().cfg.clone());
        let ck = Checkpoint::capture(&mut model);
        let dir = std::env::temp_dir().join(format!("axonn_serve_tamper_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        save_sharded(&ck, &dir, 2).unwrap();
        // Flip one mantissa bit in shard 1's first tensor and write the
        // file back — the manifest checksum must reject it, and the error
        // must say where the corruption landed.
        let shard_path = CheckpointStore::new(&dir).shard_path(0, 1);
        let mut shard: axonn_ft::checkpoint::ShardFile =
            serde_json::from_str(&std::fs::read_to_string(&shard_path).unwrap()).unwrap();
        let v = shard.layers[0].as_mut_slice();
        v[0] = f32::from_bits(v[0].to_bits() ^ 1);
        std::fs::write(&shard_path, serde_json::to_string(&shard).unwrap()).unwrap();
        let err = load_sharded(&dir).map(|_| ()).unwrap_err();
        assert!(
            err.contains("shard 1") && err.contains("checksum mismatch"),
            "unexpected error: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_ranges_partition_the_param_list() {
        for n in [1usize, 5, 18, 30] {
            for shards in 1..=4 {
                let mut covered = 0;
                for r in 0..shards {
                    let (lo, hi) = shard_range(n, shards, r);
                    assert_eq!(lo, covered);
                    covered = hi;
                }
                assert_eq!(covered, n);
            }
        }
    }
}
