//! Tensor-parallel decode: Megatron-style sharding of the attention and
//! MLP blocks across the 4D grid's X dimension, run as real SPMD ranks
//! over the pooled collectives runtime.
//!
//! Each rank holds a [`TpShard`]: the QKV projection column-sharded by
//! head (rank `r` owns heads `r·H/T .. (r+1)·H/T`), the output
//! projection row-sharded to match (partial products folded with one
//! all-reduce), and the MLP fc1 column- / fc2 row-sharded the same way —
//! two all-reduces per layer per token, exactly the communication
//! pattern of Megatron-style tensor parallelism. LayerNorms, embeddings
//! and the LM head are replicated. Biases of the row-sharded projections
//! are added *after* the reduce, once per rank, so every rank computes
//! the identical post-reduce activation and the decoded token streams
//! agree across the group.
//!
//! The per-rank KV cache holds only the rank's own heads
//! ([`KvCache::with_heads`]), so cache memory also scales down by `1/T`.

use axonn_collectives::{Comm, CommWorld};
use axonn_core::GridTopology;
use axonn_lm::decode::KvCache;
use axonn_lm::gpt::gelu;
use axonn_lm::{Gpt, GptModelConfig};
use axonn_tensor::{gemm, MatMode, Matrix};
use axonn_trace::LiveRegistry;
use std::sync::Arc;

struct TpBlock {
    ln1_gain: Matrix,
    ln1_bias: Matrix,
    ln2_gain: Matrix,
    ln2_bias: Matrix,
    /// `(dim, 3·lh·hd)` — this rank's head columns of Q|K|V, re-packed
    /// so the local layout is again three contiguous sections.
    qkv_w: Matrix,
    qkv_b: Matrix,
    /// `(lh·hd, dim)` — this rank's rows of the output projection.
    proj_rows: Matrix,
    proj_b: Matrix,
    /// `(dim, hidden/T)` and `(hidden/T, dim)`.
    fc1_w: Matrix,
    fc1_b: Matrix,
    fc2_rows: Matrix,
    fc2_b: Matrix,
}

/// One rank's slice of the model plus the replicated pieces.
pub struct TpShard {
    pub rank: usize,
    pub tp: usize,
    cfg: GptModelConfig,
    local_heads: usize,
    head_dim: usize,
    eps: f32,
    emb_tok: Matrix,
    emb_pos: Matrix,
    blocks: Vec<TpBlock>,
    lnf_gain: Matrix,
    lnf_bias: Matrix,
    head_w: Matrix,
    head_b: Matrix,
}

/// Columns `[lo, hi)` of `m`.
fn col_slice(m: &Matrix, lo: usize, hi: usize) -> Matrix {
    Matrix::from_fn(m.rows(), hi - lo, |r, c| m.row(r)[lo + c])
}

/// Rows `[lo, hi)` of `m`.
fn row_slice(m: &Matrix, lo: usize, hi: usize) -> Matrix {
    Matrix::from_fn(hi - lo, m.cols(), |r, c| m.row(lo + r)[c])
}

/// `y = x·W + b` for a single-row activation.
fn matmul_bias(x: &Matrix, w: &Matrix, b: &Matrix) -> Matrix {
    let mut y = gemm(MatMode::NN, x, w);
    for (v, bv) in y.row_mut(0).iter_mut().zip(b.as_slice()) {
        *v += bv;
    }
    y
}

/// Row-wise layer norm of a single-row activation.
fn ln_row(x: &Matrix, gain: &Matrix, bias: &Matrix, eps: f32) -> Matrix {
    let d = x.cols();
    let row = x.row(0);
    let mean = row.iter().sum::<f32>() / d as f32;
    let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
    let inv_std = 1.0 / (var + eps).sqrt();
    Matrix::from_fn(1, d, |_, c| {
        (row[c] - mean) * inv_std * gain.as_slice()[c] + bias.as_slice()[c]
    })
}

impl TpShard {
    /// Slice rank `rank` of a `tp`-way shard out of a full model.
    ///
    /// # Panics
    /// If `n_heads` or the MLP hidden width is not divisible by `tp`.
    pub fn new(model: &Gpt, tp: usize, rank: usize) -> TpShard {
        let cfg = model.cfg.clone();
        assert!(tp > 0 && rank < tp, "rank {rank} outside tp {tp}");
        assert!(
            cfg.n_heads.is_multiple_of(tp),
            "{} heads not divisible by tp {tp}",
            cfg.n_heads
        );
        let hidden = 4 * cfg.dim;
        assert!(
            hidden.is_multiple_of(tp),
            "hidden width {hidden} not divisible by tp {tp}"
        );
        let lh = cfg.n_heads / tp;
        let hd = cfg.dim / cfg.n_heads;
        let lsec = lh * hd; // this rank's columns within each of Q, K, V
        let hl = hidden / tp;
        let blocks = model
            .blocks
            .iter()
            .map(|b| {
                let qkv = &b.attn.qkv;
                // Re-pack Q|K|V head columns: local col j in section s maps
                // to global col s·dim + rank·lsec + (j - s·lsec).
                let pick = |m: &Matrix, is_bias: bool| {
                    let rows = if is_bias { 1 } else { m.rows() };
                    Matrix::from_fn(rows, 3 * lsec, |r, j| {
                        let sec = j / lsec;
                        let within = j % lsec;
                        m.row(r)[sec * cfg.dim + rank * lsec + within]
                    })
                };
                TpBlock {
                    ln1_gain: b.ln1.gain.value.clone(),
                    ln1_bias: b.ln1.bias.value.clone(),
                    ln2_gain: b.ln2.gain.value.clone(),
                    ln2_bias: b.ln2.bias.value.clone(),
                    qkv_w: pick(&qkv.w.value, false),
                    qkv_b: pick(&qkv.b.value, true),
                    proj_rows: row_slice(&b.attn.proj.w.value, rank * lsec, (rank + 1) * lsec),
                    proj_b: b.attn.proj.b.value.clone(),
                    fc1_w: col_slice(&b.mlp.fc1.w.value, rank * hl, (rank + 1) * hl),
                    fc1_b: col_slice(&b.mlp.fc1.b.value, rank * hl, (rank + 1) * hl),
                    fc2_rows: row_slice(&b.mlp.fc2.w.value, rank * hl, (rank + 1) * hl),
                    fc2_b: b.mlp.fc2.b.value.clone(),
                }
            })
            .collect();
        TpShard {
            rank,
            tp,
            local_heads: lh,
            head_dim: hd,
            eps: model.ln_f.eps(),
            emb_tok: model.emb.tok.value.clone(),
            emb_pos: model.emb.pos.value.clone(),
            blocks,
            lnf_gain: model.ln_f.gain.value.clone(),
            lnf_bias: model.ln_f.bias.value.clone(),
            head_w: model.head.w.value.clone(),
            head_b: model.head.b.value.clone(),
            cfg,
        }
    }

    /// An empty per-rank cache: only this rank's heads.
    pub fn new_cache(&self) -> KvCache {
        KvCache::with_heads(
            self.cfg.n_layers,
            self.local_heads,
            self.cfg.seq_len,
            self.head_dim,
        )
    }

    /// Feed one token at the cache's position; two all-reduces per layer
    /// fold the partial attention/MLP products across the group. Every
    /// rank returns the full (replicated) logits row.
    pub fn decode_token(
        &self,
        comm: &Comm,
        group: &axonn_collectives::ProcessGroup,
        token: usize,
        cache: &mut KvCache,
    ) -> Vec<f32> {
        assert!(cache.remaining() > 0, "generation window exceeds seq_len");
        let pos = cache.len();
        let dim = self.cfg.dim;
        let lh = self.local_heads;
        let hd = self.head_dim;
        let lsec = lh * hd;
        let scale = 1.0 / (hd as f32).sqrt();

        let tok_row = self.emb_tok.row(token);
        let pos_row = self.emb_pos.row(pos);
        let mut x = Matrix::from_fn(1, dim, |_, c| tok_row[c] + pos_row[c]);
        for (li, b) in self.blocks.iter().enumerate() {
            let normed = ln_row(&x, &b.ln1_gain, &b.ln1_bias, self.eps);
            let qkv = matmul_bias(&normed, &b.qkv_w, &b.qkv_b);
            let mut heads_out = Matrix::zeros(1, lsec);
            for h in 0..lh {
                let row = qkv.row(0);
                let off = h * hd;
                let q = Matrix::from_vec(1, hd, row[off..off + hd].to_vec());
                cache.push_row(
                    li,
                    h,
                    pos,
                    &row[lsec + off..lsec + off + hd],
                    &row[2 * lsec + off..2 * lsec + off + hd],
                );
                let k = cache.k_mat(li, h, pos + 1);
                let v = cache.v_mat(li, h, pos + 1);
                let mut s = gemm(MatMode::NT, &q, &k);
                s.scale(scale);
                let srow = s.row(0);
                let maxv = srow.iter().cloned().fold(f32::MIN, f32::max);
                let denom: f32 = srow.iter().map(|v| (v - maxv).exp()).sum();
                let p = Matrix::from_fn(1, pos + 1, |_, j| (srow[j] - maxv).exp() / denom);
                let o = gemm(MatMode::NN, &p, &v);
                heads_out.row_mut(0)[off..off + hd].copy_from_slice(o.row(0));
            }
            // Row-sharded output projection: partial product, one
            // all-reduce, bias added post-reduce on every rank.
            let mut attn_out = gemm(MatMode::NN, &heads_out, &b.proj_rows);
            comm.all_reduce(group, attn_out.as_mut_slice());
            for (v, bv) in attn_out.row_mut(0).iter_mut().zip(b.proj_b.as_slice()) {
                *v += bv;
            }
            attn_out.add_assign(&x);
            let h1 = attn_out;

            let normed2 = ln_row(&h1, &b.ln2_gain, &b.ln2_bias, self.eps);
            let mut act = matmul_bias(&normed2, &b.fc1_w, &b.fc1_b);
            act.map_inplace(gelu);
            let mut mlp_out = gemm(MatMode::NN, &act, &b.fc2_rows);
            comm.all_reduce(group, mlp_out.as_mut_slice());
            for (v, bv) in mlp_out.row_mut(0).iter_mut().zip(b.fc2_b.as_slice()) {
                *v += bv;
            }
            mlp_out.add_assign(&h1);
            x = mlp_out;
        }
        cache.advance(1);
        let xf = ln_row(&x, &self.lnf_gain, &self.lnf_bias, self.eps);
        matmul_bias(&xf, &self.head_w, &self.head_b).row(0).to_vec()
    }
}

/// Symbolic collective schedule of a TP greedy decode, per rank: the
/// serving-plane twin of `axonn_core`'s training-step extractors.
/// Replays `tokens` single-token [`TpShard::decode_token`] steps per
/// rank on a dry world — two blocking all-reduces per layer per token —
/// against a synthetic checkpoint shape with `layers` transformer
/// blocks, sized so any `tp` divides the head count and MLP width.
///
/// The streams feed `axonn_verify::check_schedules`, which is what
/// `axonnctl verify --serve <tp> [<layers> <tokens>]` runs to certify a
/// TP decode config race- and deadlock-free before a single request is
/// admitted. The schedule depends only on `(tp, layers, tokens)` — the
/// decoded token ids steer no communication — so the certificate covers
/// every prompt of the same shape.
pub fn extract_tp_decode_schedule(
    tp: usize,
    layers: usize,
    tokens: usize,
) -> Vec<Vec<axonn_collectives::SchedEvent>> {
    assert!(tp >= 1, "tp must be at least 1");
    assert!(
        layers >= 1 && tokens >= 1,
        "need at least 1 layer and token"
    );
    // heads = tp and hidden = 32·tp make every tp legal; head_dim stays 8.
    let model = Gpt::new(GptModelConfig {
        vocab: 16,
        seq_len: tokens,
        dim: 8 * tp,
        n_heads: tp,
        n_layers: layers,
        seed: 17,
    });
    let comms = CommWorld::dry(tp);
    let probe = comms[0].clone();
    for comm in comms {
        let rank = comm.rank();
        let shard = TpShard::new(&model, tp, rank);
        let grid = GridTopology::new(tp, 1, 1, 1, rank);
        let group = grid.x_group().clone();
        let mut cache = shard.new_cache();
        let mut next = 0usize;
        for _ in 0..tokens {
            let logits = shard.decode_token(&comm, &group, next, &mut cache);
            next = axonn_lm::decode::argmax(&logits);
        }
    }
    probe
        .schedule_streams()
        .expect("dry worlds always record schedules")
}

/// Greedy continuation decoded by `tp` SPMD ranks over the pooled
/// collectives runtime, with `serve.tp.*` metrics in `registry`.
/// Returns each rank's `(tokens, final_logits)` — the token streams must
/// agree (asserted), since every rank sees identical post-reduce
/// activations.
pub fn tp_greedy_spmd(
    model: &Gpt,
    tp: usize,
    prompt: &[usize],
    n_new: usize,
    registry: &LiveRegistry,
) -> Vec<(Vec<usize>, Vec<f32>)> {
    assert!(!prompt.is_empty(), "empty prompt");
    assert!(
        prompt.len() + n_new <= model.cfg.seq_len,
        "generation window exceeds seq_len"
    );
    let shards: Arc<Vec<TpShard>> = Arc::new((0..tp).map(|r| TpShard::new(model, tp, r)).collect());
    let comms = CommWorld::builder(tp).metrics(registry.clone()).build();
    let prompt = prompt.to_vec();
    let results = axonn_exec::run_spmd_on(comms, move |comm| {
        let rank = comm.rank();
        let shard = &shards[rank];
        let grid = GridTopology::new(tp, 1, 1, 1, rank);
        let group = grid.x_group().clone();
        let tokens_counter = comm
            .live_registry()
            .map(|reg| reg.counter("serve.tp.tokens"));
        let mut cache = shard.new_cache();
        // Prefill token-at-a-time: same math, one position per step.
        let mut logits = Vec::new();
        for &t in &prompt {
            logits = shard.decode_token(&comm, &group, t, &mut cache);
        }
        let mut tokens = Vec::with_capacity(n_new);
        for _ in 0..n_new {
            let next = axonn_lm::decode::argmax(&logits);
            tokens.push(next);
            if rank == 0 {
                if let Some(c) = &tokens_counter {
                    c.inc();
                }
            }
            if tokens.len() == n_new {
                break;
            }
            logits = shard.decode_token(&comm, &group, next, &mut cache);
        }
        (tokens, logits)
    });
    for r in 1..results.len() {
        assert_eq!(
            results[0].0, results[r].0,
            "rank {r} decoded a different stream than rank 0"
        );
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use axonn_lm::optim::AdamW;
    use axonn_lm::GptModelConfig;

    fn trained_model() -> Gpt {
        let mut g = Gpt::new(GptModelConfig {
            vocab: 12,
            seq_len: 12,
            dim: 16,
            n_heads: 4,
            n_layers: 2,
            seed: 9,
        });
        let mut opt = AdamW::new(3e-3);
        let seq: Vec<usize> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8];
        for _ in 0..80 {
            g.train_step(&seq[..11], &seq[1..12], None, &mut opt);
        }
        g
    }

    #[test]
    fn single_rank_tp_matches_kv_decode_bitwise() {
        // With tp = 1 there is no reduction reordering at all: the shard
        // holds the full model and must reproduce the KV path's bits.
        let mut g = trained_model();
        let prompt = [3usize, 1, 4, 1];
        let reg = LiveRegistry::new_enabled(true);
        let out = tp_greedy_spmd(&g, 1, &prompt, 5, &reg);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, g.greedy_continuation(&prompt, 5));
    }

    #[test]
    fn tp_ranks_agree_and_match_the_model() {
        let mut g = trained_model();
        let prompt = [3usize, 1, 4, 1];
        let reg = LiveRegistry::new_enabled(true);
        for tp in [2usize, 4] {
            let out = tp_greedy_spmd(&g, tp, &prompt, 5, &reg);
            assert_eq!(out.len(), tp);
            for r in 1..tp {
                assert_eq!(out[0].0, out[r].0, "tp {tp} rank {r} diverged");
            }
            // Confident (trained) model: the reduction reorder must not
            // flip any argmax.
            assert_eq!(out[0].0, g.greedy_continuation(&prompt, 5), "tp {tp}");
        }
    }

    #[test]
    fn tp_logits_approximate_the_full_forward() {
        let mut g = trained_model();
        let prompt = [3usize, 1, 4, 1];
        let reg = LiveRegistry::new_enabled(true);
        let out = tp_greedy_spmd(&g, 2, &prompt, 3, &reg);
        // Final logits row = logits of the context prompt + first 2 tokens.
        let mut ctx = prompt.to_vec();
        ctx.extend_from_slice(&out[0].0[..2]);
        let full = g.forward(&ctx);
        let want = full.row(ctx.len() - 1);
        for (a, b) in out[0].1.iter().zip(want) {
            assert!(
                (a - b).abs() <= 1e-4 * (1.0 + b.abs()),
                "tp logits diverged: {a} vs {b}"
            );
        }
    }

    #[test]
    fn tp_decode_stamps_collective_and_serve_metrics() {
        let g = trained_model();
        let reg = LiveRegistry::new_enabled(true);
        let _ = tp_greedy_spmd(&g, 2, &[3, 1], 4, &reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("serve.tp.tokens"), Some(&4));
        // The pooled collectives stamped their own counters too: two
        // all-reduces per layer per token.
        assert!(
            snap.counters.keys().any(|k| k.contains("all_reduce")),
            "no collective counters in {:?}",
            snap.counters.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn extracted_decode_schedules_certify_clean() {
        // The serving-plane certificate behind `axonnctl verify --serve`:
        // every supported tp degree's decode schedule is matched, lint-,
        // deadlock-, race-, and slab-clean.
        for tp in [1usize, 2, 4] {
            let streams = extract_tp_decode_schedule(tp, 2, 3);
            assert_eq!(streams.len(), tp);
            let report = axonn_verify::check_schedules(&streams);
            assert!(report.is_ok(), "tp={tp}: {report}");
            for (rank, stream) in streams.iter().enumerate() {
                let issues = stream
                    .iter()
                    .filter(|e| matches!(e, axonn_collectives::SchedEvent::Issue(_)))
                    .count();
                // Two all-reduces per layer per token; size-1 groups
                // record nothing at all.
                let expect = if tp == 1 { 0 } else { 2 * 2 * 3 };
                assert_eq!(issues, expect, "tp={tp} rank={rank}");
            }
        }
    }

    #[test]
    fn corrupted_decode_schedule_is_rejected() {
        let mut streams = extract_tp_decode_schedule(2, 1, 2);
        assert!(axonn_verify::inject(
            &mut streams,
            1,
            axonn_verify::InjectKind::CountMismatch
        ));
        let report = axonn_verify::check_schedules(&streams);
        assert!(!report.is_ok());
        assert!(
            report.to_string().contains("collective mismatch"),
            "unexpected report: {report}"
        );
    }

    #[test]
    fn tp2_decode_smoke_world() {
        // Deliberately tiny (untrained model, one layer, two tokens) so
        // the CI miri job can execute the full threaded tp=2 decode
        // world — pooled collectives, KV cache, teardown certification —
        // under the interpreter.
        let g = Gpt::new(GptModelConfig {
            vocab: 8,
            seq_len: 4,
            dim: 8,
            n_heads: 2,
            n_layers: 1,
            seed: 5,
        });
        let reg = LiveRegistry::new_enabled(false);
        let out = tp_greedy_spmd(&g, 2, &[1], 2, &reg);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], out[1]);
        assert_eq!(out[0].0.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_heads_are_rejected() {
        let g = Gpt::new(GptModelConfig {
            vocab: 8,
            seq_len: 8,
            dim: 12,
            n_heads: 3,
            n_layers: 1,
            seed: 1,
        });
        let _ = TpShard::new(&g, 2, 0);
    }
}
