//! `serve.*` metrics in the live registry — the serving plane's half of
//! the dashboard vocabulary `axonnctl monitor` renders.

use axonn_trace::{Counter, Gauge, LiveHistogram, LiveRegistry, SECONDS_BOUNDS};

/// Handle bundle over a [`LiveRegistry`]: one registration at engine
/// construction, lock-free stamping on the decode path.
#[derive(Clone)]
pub struct ServeMetrics {
    registry: LiveRegistry,
    pub submitted: Counter,
    pub admitted: Counter,
    pub completed: Counter,
    pub rejected: Counter,
    pub evicted: Counter,
    pub prefill_tokens: Counter,
    pub decoded_tokens: Counter,
    pub queue_depth: Gauge,
    pub in_flight: Gauge,
    pub tokens_per_s: Gauge,
    pub ttft_seconds: LiveHistogram,
    pub latency_seconds: LiveHistogram,
    pub step_seconds: LiveHistogram,
}

impl ServeMetrics {
    pub fn new(registry: &LiveRegistry) -> ServeMetrics {
        ServeMetrics {
            registry: registry.clone(),
            submitted: registry.counter("serve.requests.submitted"),
            admitted: registry.counter("serve.requests.admitted"),
            completed: registry.counter("serve.requests.completed"),
            rejected: registry.counter("serve.requests.rejected"),
            evicted: registry.counter("serve.requests.evicted"),
            prefill_tokens: registry.counter("serve.tokens.prefill"),
            decoded_tokens: registry.counter("serve.tokens.decoded"),
            queue_depth: registry.gauge("serve.queue.depth"),
            in_flight: registry.gauge("serve.requests.in_flight"),
            tokens_per_s: registry.gauge("serve.tokens_per_s"),
            ttft_seconds: registry.histogram("serve.ttft.seconds", &SECONDS_BOUNDS),
            latency_seconds: registry.histogram("serve.latency.seconds", &SECONDS_BOUNDS),
            step_seconds: registry.histogram("serve.step.seconds", &SECONDS_BOUNDS),
        }
    }

    /// The registry this bundle stamps into (shared, cloneable).
    pub fn registry(&self) -> &LiveRegistry {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_register_under_serve_names() {
        let reg = LiveRegistry::new_enabled(true);
        let m = ServeMetrics::new(&reg);
        m.submitted.inc();
        m.decoded_tokens.add(5);
        m.queue_depth.set(3.0);
        m.ttft_seconds.observe(0.002);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("serve.requests.submitted"), Some(&1));
        assert_eq!(snap.counters.get("serve.tokens.decoded"), Some(&5));
        assert_eq!(snap.gauges.get("serve.queue.depth"), Some(&3.0));
        assert!(snap.histograms.contains_key("serve.ttft.seconds"));
    }
}
