//! Synthetic "Wikipedia": deterministic articles with shared surface
//! structure and unique content.
//!
//! The paper trains on English Wikipedia pages of ≥ 2048 tokens placed
//! randomly into four disjoint 200-article buckets. We cannot ship
//! Wikipedia, so articles are generated: each is one context window of
//! tokens with a sentence-like rhythm (shared delimiter/function tokens
//! the model can learn generally) around article-unique content tokens
//! (which can only be produced verbatim by memorization). Everything is
//! seeded, so every run sees the same corpus.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One synthetic article: a fixed window of `seq_len + 1` token ids (one
/// extra token so that the shifted next-token training pair spans exactly
/// one context window).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Article {
    pub id: usize,
    pub tokens: Vec<usize>,
}

/// A bucketed corpus plus a background pool for warm-up.
#[derive(Debug, Clone)]
pub struct Corpus {
    pub vocab: usize,
    pub seq_len: usize,
    /// `buckets[b]` holds the articles trained for `epochs[b]` epochs;
    /// the last bucket is the untouched control.
    pub buckets: Vec<Vec<Article>>,
    /// Warm-up data never evaluated for memorization.
    pub background: Vec<Article>,
}

/// Reserved low token ids that give articles a learnable rhythm.
const SENTENCE_PERIOD: usize = 11;
const N_FUNCTION_TOKENS: usize = 8;

impl Corpus {
    /// Generate a corpus with `n_buckets` buckets of `per_bucket`
    /// articles each, plus `background` warm-up articles.
    pub fn generate(
        vocab: usize,
        seq_len: usize,
        n_buckets: usize,
        per_bucket: usize,
        background: usize,
        seed: u64,
    ) -> Corpus {
        assert!(vocab > N_FUNCTION_TOKENS + vocab / 8 + 2, "vocab too small");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut next_id = 0usize;
        let mut make = |rng: &mut StdRng| {
            let a = Self::make_article(vocab, seq_len, next_id, rng);
            next_id += 1;
            a
        };
        let buckets = (0..n_buckets)
            .map(|_| (0..per_bucket).map(|_| make(&mut rng)).collect())
            .collect();
        let background = (0..background).map(|_| make(&mut rng)).collect();
        Corpus {
            vocab,
            seq_len,
            buckets,
            background,
        }
    }

    fn make_article(vocab: usize, seq_len: usize, id: usize, rng: &mut StdRng) -> Article {
        let len = seq_len + 1;
        // Articles differ in how much of their text is drawn from a small
        // shared "phrase pool" versus unique content: real Wikipedia pages
        // vary widely in entropy, which is what spreads memorization
        // thresholds and produces gradual (not cliff-like) exact-match
        // curves across epochs.
        let phrase_pool = (vocab / 8).max(4);
        let shared_fraction: f64 = rng.gen_range(0.15..0.75);
        let mut tokens = Vec::with_capacity(len);
        for i in 0..len {
            if i % SENTENCE_PERIOD == SENTENCE_PERIOD - 1 {
                // Shared "punctuation" token.
                tokens.push(0);
            } else if i % SENTENCE_PERIOD == 0 {
                // Shared "function word" opening each sentence.
                tokens.push(1 + rng.gen_range(0..N_FUNCTION_TOKENS));
            } else if rng.gen_bool(shared_fraction) {
                // Common-phrase token (low entropy, easy to predict).
                tokens.push(1 + N_FUNCTION_TOKENS + rng.gen_range(0..phrase_pool));
            } else {
                // Article-unique content (memorization required).
                tokens.push(
                    1 + N_FUNCTION_TOKENS
                        + phrase_pool
                        + rng.gen_range(0..vocab - N_FUNCTION_TOKENS - phrase_pool - 1),
                );
            }
        }
        Article { id, tokens }
    }

    /// Next-token training pair for an article: inputs are all but the
    /// last token, targets all but the first — each exactly one context
    /// window long, so pairs can be batched.
    pub fn training_pair(article: &Article) -> (&[usize], &[usize]) {
        let t = &article.tokens;
        (&t[..t.len() - 1], &t[1..])
    }

    /// Batched next-token training pair for several articles: inputs and
    /// targets are the concatenation of each article's shifted pair (every
    /// article occupies exactly one window).
    pub fn batched_pair(articles: &[&Article]) -> (Vec<usize>, Vec<usize>) {
        let mut inputs = Vec::new();
        let mut targets = Vec::new();
        for a in articles {
            let (x, y) = Self::training_pair(a);
            inputs.extend_from_slice(x);
            targets.extend_from_slice(y);
        }
        (inputs, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_disjoint() {
        let a = Corpus::generate(128, 32, 4, 5, 3, 9);
        let b = Corpus::generate(128, 32, 4, 5, 3, 9);
        assert_eq!(a.buckets, b.buckets);
        assert_eq!(a.background.len(), 3);
        // All article ids distinct across buckets and background.
        let mut ids: Vec<usize> = a
            .buckets
            .iter()
            .flatten()
            .chain(a.background.iter())
            .map(|x| x.id)
            .collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn articles_have_window_length_and_valid_tokens() {
        let c = Corpus::generate(64, 48, 2, 3, 1, 1);
        for a in c.buckets.iter().flatten() {
            assert_eq!(a.tokens.len(), 49, "seq_len + 1 tokens per article");
            assert!(a.tokens.iter().all(|&t| t < 64));
        }
    }

    #[test]
    fn articles_share_structure_but_differ_in_content() {
        let c = Corpus::generate(128, 32, 1, 2, 0, 2);
        let a = &c.buckets[0][0].tokens;
        let b = &c.buckets[0][1].tokens;
        // Punctuation positions coincide.
        assert_eq!(a[10], 0);
        assert_eq!(b[10], 0);
        // Content tokens differ somewhere.
        assert_ne!(a, b);
    }

    #[test]
    fn training_pair_is_shifted() {
        let c = Corpus::generate(64, 16, 1, 1, 0, 3);
        let art = &c.buckets[0][0];
        let (x, y) = Corpus::training_pair(art);
        assert_eq!(x.len(), 16);
        assert_eq!(y.len(), 16);
        assert_eq!(x[1..], y[..15]);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Corpus::generate(64, 16, 1, 1, 0, 1);
        let b = Corpus::generate(64, 16, 1, 1, 0, 2);
        assert_ne!(a.buckets[0][0].tokens, b.buckets[0][0].tokens);
    }
}
