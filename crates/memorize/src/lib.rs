//! The memorization laboratory (Section VIII of the paper).
//!
//! Reproduces the design of the paper's continued-pre-training study at
//! CPU scale: a synthetic "Wikipedia" corpus split into four disjoint
//! buckets, trained for 0 / 1 / 4 / 6 epochs after a warm-up phase, and
//! evaluated with the exact-match metric — prompt the model with the
//! beginning of each article and check whether it greedily reproduces the
//! final tokens verbatim. The Goldfish loss (k, h) masks a
//! pseudo-random, context-keyed subset of tokens out of the loss so long
//! verbatim reproduction becomes impossible.
//!
//! Scale substitution (documented in DESIGN.md): our models are 10⁴–10⁶×
//! smaller than Llama-2/3, so "model size" is swept over a width/depth
//! ladder of the `axonn-lm` GPT, articles are one context window long,
//! and each sighting of an article within an epoch applies a small fixed
//! number of optimizer steps. The *shape* of the phenomenon — memorization
//! emerging with capacity, increasing with epochs, catastrophic at the
//! top of the ladder, suppressed by the Goldfish loss — is the
//! reproduction target, not Llama-scale absolute numbers.

pub mod corpus;
pub mod experiment;
pub mod goldfish;

pub use corpus::{Article, Corpus};
pub use experiment::{
    exact_match, run_scale, run_scale_trials, BucketResult, BucketStats, ExperimentConfig,
    ModelScale, ScaleResult, TrialStats,
};
pub use goldfish::{goldfish_mask, GoldfishParams};
