//! The Goldfish loss (Hans et al., cited as the paper's mitigation).
//!
//! A token at position `i` is *dropped from the loss* when a hash of the
//! preceding `h` tokens is divisible by `k` — the "hashed context"
//! variant, which drops the *same* tokens every time a given passage is
//! seen (crucial: re-seeing a passage must not leak previously masked
//! tokens). The paper runs k = 2, h = 13.

/// Parameters of the Goldfish mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct GoldfishParams {
    /// Drop a token when `hash % k == 0` (so a fraction `1/k` of
    /// positions is masked).
    pub k: u64,
    /// Context width of the hash.
    pub h: usize,
}

impl GoldfishParams {
    /// The paper's setting: k = 2, h = 13.
    pub fn paper() -> Self {
        GoldfishParams { k: 2, h: 13 }
    }
}

/// Compute the Goldfish mask for a *target* sequence: `mask[i] == false`
/// means target position `i` is excluded from the loss. `targets[i]` is
/// predicted from context ending at `inputs[i]`, so the hash covers the
/// `h` tokens of input context preceding (and including) position `i`.
/// The first `h` positions are always kept (not enough context to hash).
pub fn goldfish_mask(inputs: &[usize], params: GoldfishParams) -> Vec<bool> {
    assert!(params.k >= 1, "k must be at least 1");
    let n = inputs.len();
    let mut mask = vec![true; n];
    if params.k == 1 {
        // k = 1 would mask everything hashable; treat as "mask none" is
        // wrong — per definition hash % 1 == 0 always, so every position
        // with context is dropped.
        for m in mask.iter_mut().skip(params.h) {
            *m = false;
        }
        return mask;
    }
    for i in params.h..n {
        let window = &inputs[i - params.h..i];
        if fnv1a(window).is_multiple_of(params.k) {
            mask[i] = false;
        }
    }
    mask
}

fn fnv1a(tokens: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &t in tokens {
        for b in (t as u64).to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, seed: usize) -> Vec<usize> {
        (0..n)
            .map(|i| (i * 2654435761 + seed * 40503) % 97)
            .collect()
    }

    #[test]
    fn mask_is_deterministic_per_context() {
        let s = seq(200, 1);
        let p = GoldfishParams::paper();
        assert_eq!(goldfish_mask(&s, p), goldfish_mask(&s, p));
    }

    #[test]
    fn same_passage_masks_same_tokens_at_different_offsets() {
        // The hashed-context property: mask decisions depend only on the
        // local window, so a repeated passage is masked identically.
        let passage = seq(60, 2);
        let p = GoldfishParams::paper();
        let mut doc1 = seq(20, 3);
        doc1.extend_from_slice(&passage);
        let mut doc2 = seq(35, 4);
        doc2.extend_from_slice(&passage);
        let m1 = goldfish_mask(&doc1, p);
        let m2 = goldfish_mask(&doc2, p);
        // Compare mask over the passage, skipping the first h positions
        // (whose windows straddle the document prefix).
        let h = p.h;
        assert_eq!(
            &m1[20 + h..20 + 60],
            &m2[35 + h..35 + 60],
            "passage masked differently in different documents"
        );
    }

    #[test]
    fn drop_rate_is_about_one_over_k() {
        let s = seq(5000, 5);
        for k in [2u64, 3, 4] {
            let m = goldfish_mask(&s, GoldfishParams { k, h: 13 });
            let dropped = m.iter().filter(|&&b| !b).count() as f64;
            let eligible = (s.len() - 13) as f64;
            let rate = dropped / eligible;
            let expect = 1.0 / k as f64;
            assert!(
                (rate - expect).abs() < 0.05,
                "k={k}: drop rate {rate:.3} vs {expect:.3}"
            );
        }
    }

    #[test]
    fn first_h_positions_always_kept() {
        let s = seq(50, 6);
        let m = goldfish_mask(&s, GoldfishParams::paper());
        assert!(m[..13].iter().all(|&b| b));
    }

    #[test]
    fn k1_masks_everything_with_context() {
        let s = seq(30, 7);
        let m = goldfish_mask(&s, GoldfishParams { k: 1, h: 5 });
        assert!(m[..5].iter().all(|&b| b));
        assert!(m[5..].iter().all(|&b| !b));
    }
}
