//! The continued-pre-training experiment driver (Sections VIII-B/C/D).
//!
//! Protocol, mirroring the paper: (1) warm up the model on background
//! data at the high learning rate; (2) inject the buckets — every epoch
//! is one pass over each of its articles, trained in *batches* (the
//! paper uses a fixed batch of 128 samples) — while decaying the
//! learning rate; (3) prompt with the beginning of every article
//! (including the untouched control bucket) and score an exact match if
//! the model greedily reproduces the final `gen_tokens` tokens verbatim.

use crate::corpus::{Article, Corpus};
use crate::goldfish::{goldfish_mask, GoldfishParams};
use axonn_lm::{AdamW, Gpt, GptModelConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;

/// One rung of the model-size ladder.
#[derive(Debug, Clone, Serialize)]
pub struct ModelScale {
    /// Display label, e.g. "70B-proxy".
    pub label: String,
    pub dim: usize,
    pub n_heads: usize,
    pub n_layers: usize,
    /// Epochs of pre-training over the *whole* corpus (including the
    /// control bucket) before the experiment. Nonzero only for the
    /// largest scale, reproducing the paper's observation that the 405B
    /// model had already memorized control documents during
    /// pre-training.
    pub pretrain_epochs: usize,
}

impl ModelScale {
    pub fn new(label: &str, dim: usize, n_heads: usize, n_layers: usize) -> Self {
        ModelScale {
            label: label.into(),
            dim,
            n_heads,
            n_layers,
            pretrain_epochs: 0,
        }
    }

    pub fn with_pretraining(mut self, epochs: usize) -> Self {
        self.pretrain_epochs = epochs;
        self
    }
}

/// Experiment knobs (see module docs for the protocol).
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentConfig {
    pub vocab: usize,
    pub seq_len: usize,
    /// How many trailing tokens must be reproduced verbatim (the paper
    /// uses 50).
    pub gen_tokens: usize,
    pub articles_per_bucket: usize,
    /// Epochs for the trained buckets (the control bucket with 0 epochs
    /// is always added).
    pub bucket_epochs: Vec<usize>,
    pub background_articles: usize,
    pub warmup_steps: usize,
    /// Peak learning rate (the paper warms up to 3e-4 and decays to
    /// 3e-5; our tiny models tolerate higher rates).
    pub lr_max: f32,
    pub lr_min: f32,
    /// Articles trained together per optimizer step (the paper uses a
    /// batch of 128 samples).
    pub batch_articles: usize,
    /// Optimizer steps applied to each batch per epoch (scale
    /// substitution: our models are millions of times smaller than
    /// Llama, so one epoch applies a few steps instead of one — see
    /// DESIGN.md).
    pub steps_per_batch: usize,
    /// Background articles mixed into every injection batch: the
    /// continued-pre-training pressure that keeps gradients flowing on
    /// general text while the buckets are injected. This is what makes
    /// memorization *capacity-limited*: small models spend their capacity
    /// tracking the background stream and fail to retain bucket content,
    /// large models retain both — the emergence mechanism of Fig. 10.
    pub background_mix: usize,
    /// Goldfish masking, if enabled (Fig. 11 vs Fig. 10).
    pub goldfish: Option<GoldfishParams>,
    pub seed: u64,
}

impl ExperimentConfig {
    /// A configuration sized for tests: seconds, not minutes.
    pub fn smoke() -> Self {
        ExperimentConfig {
            vocab: 96,
            seq_len: 32,
            gen_tokens: 10,
            articles_per_bucket: 3,
            bucket_epochs: vec![1, 4, 6],
            background_articles: 4,
            warmup_steps: 4,
            lr_max: 3e-3,
            lr_min: 1.5e-3,
            batch_articles: 3,
            steps_per_batch: 4,
            background_mix: 0,
            goldfish: None,
            seed: 17,
        }
    }

    /// The configuration the figure-generating benches use. Sized for a
    /// single CPU core (see the `calibrate_memorize` utility).
    pub fn bench() -> Self {
        ExperimentConfig {
            vocab: 192,
            seq_len: 48,
            gen_tokens: 16,
            articles_per_bucket: 6,
            bucket_epochs: vec![1, 4, 6],
            background_articles: 48,
            warmup_steps: 8,
            lr_max: 4e-3,
            lr_min: 1e-3,
            batch_articles: 6,
            steps_per_batch: 14,
            background_mix: 0,
            goldfish: None,
            seed: 1234,
        }
    }

    pub fn with_goldfish(mut self, p: GoldfishParams) -> Self {
        self.goldfish = Some(p);
        self
    }
}

/// Exact-match results for one bucket.
#[derive(Debug, Clone, Serialize)]
pub struct BucketResult {
    pub epochs: usize,
    pub exact_match_pct: f64,
    pub matched: usize,
    pub total: usize,
}

/// Results for one model scale.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleResult {
    pub label: String,
    pub parameters: usize,
    /// Bucket results in the order `bucket_epochs` + control (0 epochs)
    /// last.
    pub buckets: Vec<BucketResult>,
}

/// Does the model reproduce the article's tail (within its first context
/// window) verbatim from its head?
pub fn exact_match(model: &mut Gpt, article: &Article, gen_tokens: usize) -> bool {
    let window = model.cfg.seq_len.min(article.tokens.len());
    assert!(gen_tokens < window, "generation longer than the window");
    let prompt = &article.tokens[..window - gen_tokens];
    let truth = &article.tokens[window - gen_tokens..window];
    let generated = model.greedy_continuation(prompt, gen_tokens);
    generated == truth
}

/// One batched training step over `articles`, repeated `steps` times.
fn train_batch(
    model: &mut Gpt,
    opt: &mut AdamW,
    articles: &[&Article],
    steps: usize,
    goldfish: Option<GoldfishParams>,
) -> f32 {
    if articles.is_empty() {
        return 0.0;
    }
    let (inputs, targets) = Corpus::batched_pair(articles);
    let mask = goldfish.map(|p| {
        // Mask each article independently: the hash context never
        // crosses article boundaries.
        let mut m = Vec::with_capacity(inputs.len());
        for a in articles {
            let (x, _) = Corpus::training_pair(a);
            m.extend(goldfish_mask(x, p));
        }
        m
    });
    let mut loss = 0.0;
    for _ in 0..steps {
        loss = model.train_step(&inputs, &targets, mask.as_deref(), opt);
    }
    loss
}

/// Run the full protocol for one model scale. Returns exact-match rates
/// for every trained bucket plus the control.
pub fn run_scale(scale: &ModelScale, cfg: &ExperimentConfig) -> ScaleResult {
    let n_trained = cfg.bucket_epochs.len();
    let corpus = Corpus::generate(
        cfg.vocab,
        cfg.seq_len,
        n_trained + 1, // + control bucket
        cfg.articles_per_bucket,
        cfg.background_articles,
        cfg.seed,
    );
    let mut model = Gpt::new(GptModelConfig {
        vocab: cfg.vocab,
        seq_len: cfg.seq_len,
        dim: scale.dim,
        n_heads: scale.n_heads,
        n_layers: scale.n_layers,
        seed: cfg.seed ^ 0xA5A5,
    });
    let params = model.num_parameters();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5A5A);

    // Optional pre-training over the whole corpus (largest scale only):
    // this is what seeds nonzero memorization of the *control* bucket.
    let mut opt = AdamW::new(cfg.lr_max);
    for _ in 0..scale.pretrain_epochs {
        let mut all: Vec<&Article> = corpus.buckets.iter().flatten().collect();
        all.shuffle(&mut rng);
        for batch in all.chunks(cfg.batch_articles) {
            train_batch(
                &mut model,
                &mut opt,
                batch,
                cfg.steps_per_batch,
                cfg.goldfish,
            );
        }
    }

    // Warm-up on background data at the peak learning rate.
    let bg: Vec<&Article> = corpus.background.iter().collect();
    for step in 0..cfg.warmup_steps {
        let start = (step * cfg.batch_articles) % bg.len().max(1);
        let batch: Vec<&Article> = (0..cfg.batch_articles.min(bg.len()))
            .map(|i| bg[(start + i) % bg.len()])
            .collect();
        train_batch(&mut model, &mut opt, &batch, 1, cfg.goldfish);
    }

    // Injection phase: epoch `e` trains every bucket whose epoch budget
    // exceeds `e`, in shuffled batches mixed with a rolling stream of
    // background articles (continued pre-training), while the learning
    // rate decays.
    let max_epochs = cfg.bucket_epochs.iter().copied().max().unwrap_or(0);
    let total_epoch_slots: usize = cfg.bucket_epochs.iter().sum();
    let mut slot = 0usize;
    let mut bg_cursor = 0usize;
    for e in 0..max_epochs {
        let mut active: Vec<&Article> = cfg
            .bucket_epochs
            .iter()
            .enumerate()
            .filter(|(_, &epochs)| epochs > e)
            .flat_map(|(b, _)| corpus.buckets[b].iter())
            .collect();
        if active.is_empty() {
            continue;
        }
        active.shuffle(&mut rng);
        let frac = slot as f32 / total_epoch_slots.max(1) as f32;
        opt.lr = cfg.lr_max + (cfg.lr_min - cfg.lr_max) * frac;
        for batch in active.chunks(cfg.batch_articles) {
            let mut mixed: Vec<&Article> = batch.to_vec();
            for _ in 0..cfg.background_mix.min(corpus.background.len()) {
                mixed.push(&corpus.background[bg_cursor % corpus.background.len()]);
                bg_cursor += 1;
            }
            train_batch(
                &mut model,
                &mut opt,
                &mixed,
                cfg.steps_per_batch,
                cfg.goldfish,
            );
        }
        slot += cfg
            .bucket_epochs
            .iter()
            .filter(|&&epochs| epochs > e)
            .count();
    }

    // Evaluation: exact match per bucket; control last.
    let mut buckets = Vec::new();
    let mut order: Vec<(usize, usize)> = cfg
        .bucket_epochs
        .iter()
        .enumerate()
        .map(|(b, &e)| (b, e))
        .collect();
    order.push((n_trained, 0)); // control
    for (b, epochs) in order {
        let arts = &corpus.buckets[b];
        let matched = arts
            .iter()
            .filter(|a| exact_match(&mut model, a, cfg.gen_tokens))
            .count();
        buckets.push(BucketResult {
            epochs,
            exact_match_pct: 100.0 * matched as f64 / arts.len() as f64,
            matched,
            total: arts.len(),
        });
    }
    ScaleResult {
        label: scale.label.clone(),
        parameters: params,
        buckets,
    }
}

/// Aggregated exact-match statistics over several trials (the paper
/// averages 5 trials for small models, 3 for 70B, 1 for 405B, with
/// min/max error bars).
#[derive(Debug, Clone, Serialize)]
pub struct TrialStats {
    pub label: String,
    pub parameters: usize,
    /// Per bucket (same order as [`ScaleResult::buckets`]): epochs,
    /// mean / min / max exact-match percentage across trials.
    pub buckets: Vec<BucketStats>,
    pub trials: usize,
}

#[derive(Debug, Clone, Serialize)]
pub struct BucketStats {
    pub epochs: usize,
    pub mean_pct: f64,
    pub min_pct: f64,
    pub max_pct: f64,
}

/// Run `trials` independent repetitions of the protocol (fresh corpus
/// and model seeds per trial) and aggregate.
pub fn run_scale_trials(scale: &ModelScale, cfg: &ExperimentConfig, trials: usize) -> TrialStats {
    assert!(trials >= 1);
    use rayon::prelude::*;
    let per_trial: Vec<ScaleResult> = (0..trials)
        .into_par_iter()
        .map(|t| {
            let mut c = cfg.clone();
            c.seed = cfg.seed.wrapping_add(1000 * t as u64);
            run_scale(scale, &c)
        })
        .collect();
    let n_buckets = per_trial[0].buckets.len();
    let buckets = (0..n_buckets)
        .map(|b| {
            let pcts: Vec<f64> = per_trial
                .iter()
                .map(|r| r.buckets[b].exact_match_pct)
                .collect();
            BucketStats {
                epochs: per_trial[0].buckets[b].epochs,
                mean_pct: pcts.iter().sum::<f64>() / trials as f64,
                min_pct: pcts.iter().cloned().fold(f64::INFINITY, f64::min),
                max_pct: pcts.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            }
        })
        .collect();
    TrialStats {
        label: scale.label.clone(),
        parameters: per_trial[0].parameters,
        buckets,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_experiment_runs_and_reports_all_buckets() {
        let cfg = ExperimentConfig::smoke();
        let scale = ModelScale::new("test", 32, 2, 1);
        let r = run_scale(&scale, &cfg);
        assert_eq!(r.buckets.len(), 4); // 1, 4, 6 epochs + control
        assert_eq!(r.buckets[3].epochs, 0);
        assert!(r.parameters > 0);
        for b in &r.buckets {
            assert_eq!(b.total, cfg.articles_per_bucket);
            assert!((0.0..=100.0).contains(&b.exact_match_pct));
        }
    }

    #[test]
    fn large_model_memorizes_more_than_small() {
        // The emergence-with-scale shape of Fig. 10, in miniature.
        let mut cfg = ExperimentConfig::smoke();
        cfg.bucket_epochs = vec![8];
        cfg.articles_per_bucket = 2;
        cfg.gen_tokens = 8;
        cfg.steps_per_batch = 8;
        let small = run_scale(&ModelScale::new("small", 8, 1, 1), &cfg);
        let large = run_scale(&ModelScale::new("large", 96, 4, 2), &cfg);
        let s = small.buckets[0].matched;
        let l = large.buckets[0].matched;
        assert!(l >= s, "large model matched {l} articles vs small {s}");
        assert!(l >= 1, "the large model should memorize something");
    }

    #[test]
    fn goldfish_suppresses_memorization() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.bucket_epochs = vec![8];
        cfg.articles_per_bucket = 2;
        cfg.gen_tokens = 8;
        cfg.steps_per_batch = 8;
        let scale = ModelScale::new("large", 96, 4, 2);
        let plain = run_scale(&scale, &cfg);
        let fish = run_scale(
            &scale,
            &cfg.clone().with_goldfish(GoldfishParams { k: 2, h: 4 }),
        );
        assert!(
            fish.buckets[0].matched <= plain.buckets[0].matched,
            "goldfish increased memorization?!"
        );
        assert_eq!(
            fish.buckets[0].matched, 0,
            "goldfish should stop exact matches"
        );
    }

    #[test]
    fn control_bucket_stays_clean_without_pretraining() {
        let cfg = ExperimentConfig::smoke();
        let r = run_scale(&ModelScale::new("m", 48, 2, 2), &cfg);
        assert_eq!(r.buckets.last().unwrap().matched, 0);
    }

    #[test]
    fn pretraining_seeds_control_memorization_pressure() {
        // With enough pre-training epochs over the whole corpus, even the
        // control bucket shows exact matches (the 405B effect). Use a
        // generous budget to keep the test robust.
        // Isolate the mechanism: no injection phase, no warmup — the
        // control bucket is only ever seen during pre-training, and the
        // pretrained model must reproduce some of it (the 405B effect).
        // End-of-protocol retention under continued training is a
        // bench-level observation (fig10/fig11).
        let mut cfg = ExperimentConfig::smoke();
        cfg.articles_per_bucket = 2;
        cfg.gen_tokens = 6;
        cfg.steps_per_batch = 8;
        cfg.bucket_epochs = vec![];
        cfg.warmup_steps = 0;
        let scale = ModelScale::new("pretrained", 160, 4, 2).with_pretraining(16);
        let r = run_scale(&scale, &cfg);
        assert!(
            r.buckets.last().unwrap().matched >= 1,
            "pre-training should leave control-bucket memorization"
        );
        // Without pre-training the same run leaves the control clean.
        let clean = run_scale(&ModelScale::new("fresh", 160, 4, 2), &cfg);
        assert_eq!(clean.buckets.last().unwrap().matched, 0);
    }

    #[test]
    fn background_mixing_suppresses_memorization() {
        // Continued-pretraining pressure: mixing fresh background data
        // into every injection batch reduces what a capacity-limited
        // model can retain verbatim.
        let mut cfg = ExperimentConfig::smoke();
        cfg.bucket_epochs = vec![8];
        cfg.articles_per_bucket = 2;
        cfg.gen_tokens = 8;
        cfg.steps_per_batch = 8;
        cfg.background_articles = 16;
        let scale = ModelScale::new("m", 48, 2, 2);
        let clean = run_scale(&scale, &cfg);
        cfg.background_mix = 6;
        let mixed = run_scale(&scale, &cfg);
        assert!(
            mixed.buckets[0].matched <= clean.buckets[0].matched,
            "background mixing should not increase memorization: {} vs {}",
            mixed.buckets[0].matched,
            clean.buckets[0].matched
        );
    }

    #[test]
    fn trial_aggregation_statistics_are_consistent() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.bucket_epochs = vec![2];
        cfg.articles_per_bucket = 2;
        cfg.warmup_steps = 2;
        cfg.steps_per_batch = 1;
        let stats = run_scale_trials(&ModelScale::new("m", 16, 2, 1), &cfg, 3);
        assert_eq!(stats.trials, 3);
        assert_eq!(stats.buckets.len(), 2); // one trained bucket + control
        for b in &stats.buckets {
            assert!(b.min_pct <= b.mean_pct && b.mean_pct <= b.max_pct);
            assert!((0.0..=100.0).contains(&b.mean_pct));
        }
    }

    #[test]
    fn exact_match_detects_memorization_directly() {
        let cfg = ExperimentConfig::smoke();
        let corpus = Corpus::generate(cfg.vocab, 32, 1, 1, 0, 5);
        let article = &corpus.buckets[0][0];
        let mut model = Gpt::new(GptModelConfig {
            vocab: cfg.vocab,
            seq_len: 32,
            dim: 64,
            n_heads: 4,
            n_layers: 2,
            seed: 2,
        });
        let mut opt = AdamW::new(2e-3);
        assert!(
            !exact_match(&mut model, article, 8),
            "untrained model matched"
        );
        for _ in 0..60 {
            train_batch(&mut model, &mut opt, &[article], 1, None);
        }
        assert!(
            exact_match(&mut model, article, 8),
            "failed to memorize one article"
        );
    }
}
