//! GEMM kernels with distinct NN / NT / TN code paths.
//!
//! Section V-C of the paper observed that BLAS libraries ship kernels of
//! very different quality for the three operand-transposition modes (on
//! Frontier a TN matmul ran at 6% of peak vs 55% for NN), and built an
//! automated tuner that times all modes on the first batch. To reproduce
//! that situation honestly on CPU, the three modes here are implemented
//! with genuinely different memory-access patterns:
//!
//! * **NN** (`C = A·B`): blocked i-k-j loop with a unit-stride inner loop
//!   over both `B` and `C` rows — the fast path.
//! * **NT** (`C = A·Bᵀ`): row-by-row dot products — contiguous reads but a
//!   scalar reduction, somewhat slower than NN.
//! * **TN** (`C = Aᵀ·B`): textbook loop with column-strided access to `A`
//!   — deliberately the naive implementation, and markedly slower for
//!   large `k`, mirroring the rocBLAS behaviour the paper tuned around.
//!
//! All kernels accumulate in `f32`; [`gemm_bf16`] additionally quantizes
//! the operands to the bf16 grid first, which is how the mixed-precision
//! training mode reaches these kernels.

use crate::matrix::Matrix;
use rayon::prelude::*;

/// Operand transposition mode of a matrix multiply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatMode {
    /// `C = A · B`
    NN,
    /// `C = A · Bᵀ`
    NT,
    /// `C = Aᵀ · B`
    TN,
}

impl MatMode {
    pub const ALL: [MatMode; 3] = [MatMode::NN, MatMode::NT, MatMode::TN];

    /// Output shape for operand shapes `a` and `b` under this mode.
    ///
    /// # Panics
    /// If the contracted dimensions do not match.
    pub fn output_shape(self, a: (usize, usize), b: (usize, usize)) -> (usize, usize) {
        match self {
            MatMode::NN => {
                assert_eq!(a.1, b.0, "NN: A cols must equal B rows");
                (a.0, b.1)
            }
            MatMode::NT => {
                assert_eq!(a.1, b.1, "NT: A cols must equal B cols");
                (a.0, b.0)
            }
            MatMode::TN => {
                assert_eq!(a.0, b.0, "TN: A rows must equal B rows");
                (a.1, b.1)
            }
        }
    }
}

impl std::fmt::Display for MatMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MatMode::NN => "NN",
            MatMode::NT => "NT",
            MatMode::TN => "TN",
        };
        f.write_str(s)
    }
}

/// Below this many multiply-adds the kernels stay single-threaded; rayon
/// task overhead dominates tiny products.
const PAR_THRESHOLD: usize = 64 * 64 * 64;

/// Multiply with the given mode, allocating the output.
pub fn gemm(mode: MatMode, a: &Matrix, b: &Matrix) -> Matrix {
    let (m, n) = mode.output_shape(a.shape(), b.shape());
    let mut c = Matrix::zeros(m, n);
    gemm_into(mode, a, b, &mut c);
    c
}

/// Multiply with the given mode into a preallocated output (overwritten).
///
/// # Panics
/// If `c` does not have the shape implied by `mode`.
pub fn gemm_into(mode: MatMode, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let expect = mode.output_shape(a.shape(), b.shape());
    assert_eq!(c.shape(), expect, "output shape mismatch for {mode}");
    match mode {
        MatMode::NN => gemm_nn(a, b, c),
        MatMode::NT => gemm_nt(a, b, c),
        MatMode::TN => gemm_tn(a, b, c),
    }
}

/// Mixed-precision multiply: quantize both operands to the bf16 grid,
/// multiply with f32 accumulation. This is the entry point used by the
/// training engine when `precision = Bf16Mixed`.
pub fn gemm_bf16(mode: MatMode, a: &Matrix, b: &Matrix) -> Matrix {
    let a16 = a.to_bf16();
    let b16 = b.to_bf16();
    gemm(mode, &a16, &b16)
}

/// NN fast path: for each row of C, accumulate k rank-1 row updates with a
/// unit-stride inner loop.
///
/// The zero-skip (ReLU outputs make whole A entries vanish) is decided
/// once per A row, not per element: dense rows — the common case for
/// weights and raw activations — take a branch-free accumulation loop,
/// and only rows that actually contain zeros pay the per-element test.
fn gemm_nn(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let n = b.cols();
    let work = m * n * k;
    let body = |(i, c_row): (usize, &mut [f32])| {
        c_row.fill(0.0);
        let a_row = a.row(i);
        if a_row.iter().take(k).any(|&v| v == 0.0) {
            for (p, &a_ip) in a_row.iter().enumerate().take(k) {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = b.row(p);
                for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                    *c_v += a_ip * b_v;
                }
            }
        } else {
            for (p, &a_ip) in a_row.iter().enumerate().take(k) {
                let b_row = b.row(p);
                for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                    *c_v += a_ip * b_v;
                }
            }
        }
    };
    if work >= PAR_THRESHOLD {
        c.as_mut_slice()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(body);
    } else {
        c.as_mut_slice().chunks_mut(n).enumerate().for_each(body);
    }
}

/// NT path: C[i][j] = dot(A row i, B row j).
fn gemm_nt(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let n = b.rows();
    let work = m * n * k;
    let body = |(i, c_row): (usize, &mut [f32])| {
        let a_row = a.row(i);
        for (j, c_v) in c_row.iter_mut().enumerate() {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *c_v = acc;
        }
    };
    if work >= PAR_THRESHOLD {
        c.as_mut_slice()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(body);
    } else {
        c.as_mut_slice().chunks_mut(n).enumerate().for_each(body);
    }
}

/// TN path, deliberately naive: C[i][j] = sum_p A[p][i] * B[p][j] with a
/// column-strided walk over `A`. This is the "bad kernel" the automated
/// tuner learns to avoid by transposing `A` and calling NN instead.
fn gemm_tn(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (k, m) = a.shape();
    let n = b.cols();
    let a_data = a.as_slice();
    let work = m * n * k;
    let body = |(i, c_row): (usize, &mut [f32])| {
        for (j, c_v) in c_row.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            // Column-strided access to A: stride m per step.
            for p in 0..k {
                acc += a_data[p * m + i] * b.row(p)[j];
            }
            *c_v = acc;
        }
    };
    if work >= PAR_THRESHOLD {
        c.as_mut_slice()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(body);
    } else {
        c.as_mut_slice().chunks_mut(n).enumerate().for_each(body);
    }
}

/// Naive triple-loop reference used only by tests.
pub fn gemm_reference(mode: MatMode, a: &Matrix, b: &Matrix) -> Matrix {
    let (m, n) = mode.output_shape(a.shape(), b.shape());
    let k = match mode {
        MatMode::NN | MatMode::NT => a.cols(),
        MatMode::TN => a.rows(),
    };
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                let av = match mode {
                    MatMode::NN | MatMode::NT => a[(i, p)],
                    MatMode::TN => a[(p, i)],
                };
                let bv = match mode {
                    MatMode::NN | MatMode::TN => b[(p, j)],
                    MatMode::NT => b[(j, p)],
                };
                acc += av * bv;
            }
            c[(i, j)] = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mats(m: usize, k: usize, n: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        (
            Matrix::random(m, k, 1.0, seed),
            Matrix::random(k, n, 1.0, seed + 1),
            Matrix::random(n, k, 1.0, seed + 2),
        )
    }

    #[test]
    fn nn_matches_reference() {
        let (a, b, _) = mats(13, 7, 11, 1);
        let c = gemm(MatMode::NN, &a, &b);
        assert!(c.approx_eq(&gemm_reference(MatMode::NN, &a, &b), 1e-5));
    }

    #[test]
    fn nt_matches_reference() {
        let (a, _, bt) = mats(13, 7, 11, 2);
        let c = gemm(MatMode::NT, &a, &bt);
        assert!(c.approx_eq(&gemm_reference(MatMode::NT, &a, &bt), 1e-5));
    }

    #[test]
    fn tn_matches_reference() {
        let at = Matrix::random(7, 13, 1.0, 3);
        let b = Matrix::random(7, 11, 1.0, 4);
        let c = gemm(MatMode::TN, &at, &b);
        assert!(c.approx_eq(&gemm_reference(MatMode::TN, &at, &b), 1e-5));
    }

    #[test]
    fn modes_agree_via_explicit_transposes() {
        // NT(A, B) == NN(A, Bᵀ) and TN(A, B) == NN(Aᵀ, B).
        let a = Matrix::random(9, 6, 1.0, 5);
        let b = Matrix::random(8, 6, 1.0, 6);
        let nt = gemm(MatMode::NT, &a, &b);
        let nn = gemm(MatMode::NN, &a, &b.transposed());
        assert!(nt.approx_eq(&nn, 1e-5));

        let a2 = Matrix::random(6, 9, 1.0, 7);
        let b2 = Matrix::random(6, 8, 1.0, 8);
        let tn = gemm(MatMode::TN, &a2, &b2);
        let nn2 = gemm(MatMode::NN, &a2.transposed(), &b2);
        assert!(tn.approx_eq(&nn2, 1e-5));
    }

    #[test]
    fn identity_multiplication() {
        let a = Matrix::random(5, 5, 1.0, 9);
        let i = Matrix::eye(5);
        assert!(gemm(MatMode::NN, &a, &i).approx_eq(&a, 1e-6));
        assert!(gemm(MatMode::NN, &i, &a).approx_eq(&a, 1e-6));
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Big enough to cross PAR_THRESHOLD.
        let a = Matrix::random(96, 96, 1.0, 10);
        let b = Matrix::random(96, 96, 1.0, 11);
        let c = gemm(MatMode::NN, &a, &b);
        assert!(c.approx_eq(&gemm_reference(MatMode::NN, &a, &b), 1e-4));
    }

    #[test]
    fn output_shapes() {
        assert_eq!(MatMode::NN.output_shape((2, 3), (3, 5)), (2, 5));
        assert_eq!(MatMode::NT.output_shape((2, 3), (5, 3)), (2, 5));
        assert_eq!(MatMode::TN.output_shape((3, 2), (3, 5)), (2, 5));
    }

    #[test]
    #[should_panic(expected = "NN: A cols must equal B rows")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 5);
        let _ = gemm(MatMode::NN, &a, &b);
    }

    #[test]
    fn gemm_bf16_quantizes_operands() {
        // With operands exactly on the bf16 grid, bf16 gemm equals f32 gemm.
        let mut a = Matrix::random(8, 8, 1.0, 12);
        let mut b = Matrix::random(8, 8, 1.0, 13);
        a.round_bf16();
        b.round_bf16();
        let full = gemm(MatMode::NN, &a, &b);
        let mixed = gemm_bf16(MatMode::NN, &a, &b);
        assert_eq!(full, mixed);
    }

    #[test]
    fn gemm_bf16_error_is_bounded() {
        let a = Matrix::random(16, 16, 1.0, 14);
        let b = Matrix::random(16, 16, 1.0, 15);
        let full = gemm(MatMode::NN, &a, &b);
        let mixed = gemm_bf16(MatMode::NN, &a, &b);
        // Two operands each within 2^-8 relative error, k=16 accumulation:
        // generous bound of 0.05 absolute for unit-scale inputs.
        assert!(full.max_abs_diff(&mixed) < 0.05);
    }

    #[test]
    fn zero_sized_edges() {
        let a = Matrix::zeros(0, 4);
        let b = Matrix::zeros(4, 3);
        let c = gemm(MatMode::NN, &a, &b);
        assert_eq!(c.shape(), (0, 3));
    }
}
