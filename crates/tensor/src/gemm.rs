//! GEMM entry points: blocked/packed kernel hierarchy with distinct
//! NN / NT / TN handling, plus the retained naive tier.
//!
//! Section V-C of the paper observed that BLAS libraries ship kernels of
//! very different quality for the three operand-transposition modes (on
//! Frontier a TN matmul ran at 6% of peak vs 55% for NN), and built an
//! automated tuner that times all modes on the first batch. This module
//! reproduces that situation honestly on CPU with **two tiers**:
//!
//! * The **blocked tier** (default): cache-blocked mc/kc/nc loops over
//!   register-tiled micro-kernels reading packed B panels
//!   ([`crate::pack`], [`crate::kernel`]). NT packs `Bᵀ` panels so the
//!   dot-product reduction becomes the same broadcast-multiply-add loop
//!   as NN; TN transpose-packs `A` so the stride-`m` column walk becomes
//!   a pack cost. With the `simd` feature and an AVX2 CPU the inner loop
//!   is two 8-lane vectors, still bitwise identical to
//!   [`gemm_reference`].
//! * The **naive tier** ([`gemm_into_naive`], [`gemm_tn_naive`]): the
//!   pre-blocking scalar kernels, kept as a genuine alternative the
//!   `axonn-core` tuner times against the packed tier (TN-via-pack vs
//!   TN-naive is now a real decision, mirroring the rocBLAS gap the
//!   paper tuned around) and as the "scalar" column of the bench drift
//!   tables.
//!
//! All kernels accumulate in `f32`; [`gemm_bf16`] quantizes operands to
//! the bf16 grid *during packing* (no intermediate matrix copies), which
//! is how the mixed-precision training mode reaches these kernels.

use crate::kernel;
use crate::matrix::Matrix;
use crate::pack::{self, APack, BLayout, BlockSizes};
use rayon::prelude::*;
use std::cell::Cell;

/// Operand transposition mode of a matrix multiply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatMode {
    /// `C = A · B`
    NN,
    /// `C = A · Bᵀ`
    NT,
    /// `C = Aᵀ · B`
    TN,
}

impl MatMode {
    pub const ALL: [MatMode; 3] = [MatMode::NN, MatMode::NT, MatMode::TN];

    /// Output shape for operand shapes `a` and `b` under this mode.
    ///
    /// # Panics
    /// If the contracted dimensions do not match.
    pub fn output_shape(self, a: (usize, usize), b: (usize, usize)) -> (usize, usize) {
        match self {
            MatMode::NN => {
                assert_eq!(a.1, b.0, "NN: A cols must equal B rows");
                (a.0, b.1)
            }
            MatMode::NT => {
                assert_eq!(a.1, b.1, "NT: A cols must equal B cols");
                (a.0, b.0)
            }
            MatMode::TN => {
                assert_eq!(a.0, b.0, "TN: A rows must equal B rows");
                (a.1, b.1)
            }
        }
    }
}

impl std::fmt::Display for MatMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MatMode::NN => "NN",
            MatMode::NT => "NT",
            MatMode::TN => "TN",
        };
        f.write_str(s)
    }
}

/// Below this many multiply-adds the kernels stay single-threaded; rayon
/// task overhead dominates tiny products.
const PAR_THRESHOLD: usize = 64 * 64 * 64;

/// Pack/kernel accounting for one multiply, surfaced on trace GEMM spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GemmStats {
    /// Bytes written into the thread-local pack buffers (B panels, plus
    /// the A copy for TN and bf16).
    pub packed_bytes: u64,
    /// Number of NR-wide B panels packed.
    pub panels: u32,
    /// Whether the AVX2 micro-kernels ran (false on the scalar fallback).
    pub simd: bool,
}

/// Per-thread accumulated GEMM wall time, split by operand mode; drained
/// by the step benchmark to report compute-phase medians.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GemmPhase {
    pub nn_seconds: f64,
    pub nt_seconds: f64,
    pub tn_seconds: f64,
    pub calls: u64,
    pub packed_bytes: u64,
    pub panels: u64,
}

impl GemmPhase {
    pub fn total_seconds(&self) -> f64 {
        self.nn_seconds + self.nt_seconds + self.tn_seconds
    }

    pub fn mode_seconds(&self, mode: MatMode) -> f64 {
        match mode {
            MatMode::NN => self.nn_seconds,
            MatMode::NT => self.nt_seconds,
            MatMode::TN => self.tn_seconds,
        }
    }
}

thread_local! {
    static PHASE: Cell<GemmPhase> = const {
        Cell::new(GemmPhase {
            nn_seconds: 0.0,
            nt_seconds: 0.0,
            tn_seconds: 0.0,
            calls: 0,
            packed_bytes: 0,
            panels: 0,
        })
    };
}

/// Drain this thread's accumulated GEMM phase counters (resets to zero).
pub fn take_gemm_phase() -> GemmPhase {
    PHASE.with(|c| c.replace(GemmPhase::default()))
}

fn record_phase(mode: MatMode, seconds: f64, stats: &GemmStats) {
    PHASE.with(|c| {
        let mut p = c.get();
        match mode {
            MatMode::NN => p.nn_seconds += seconds,
            MatMode::NT => p.nt_seconds += seconds,
            MatMode::TN => p.tn_seconds += seconds,
        }
        p.calls += 1;
        p.packed_bytes += stats.packed_bytes;
        p.panels += stats.panels as u64;
        c.set(p);
    });
}

fn timed(mode: MatMode, f: impl FnOnce() -> GemmStats) -> GemmStats {
    let t0 = std::time::Instant::now();
    let stats = f();
    record_phase(mode, t0.elapsed().as_secs_f64(), &stats);
    stats
}

/// Multiply with the given mode, allocating the output.
pub fn gemm(mode: MatMode, a: &Matrix, b: &Matrix) -> Matrix {
    let (m, n) = mode.output_shape(a.shape(), b.shape());
    let mut c = Matrix::zeros(m, n);
    gemm_into(mode, a, b, &mut c);
    c
}

/// Multiply with the given mode into a preallocated output (overwritten).
///
/// # Panics
/// If `c` does not have the shape implied by `mode`.
pub fn gemm_into(mode: MatMode, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let _ = gemm_into_stats(mode, a, b, c);
}

/// [`gemm_into`] returning the pack/kernel accounting for trace spans.
pub fn gemm_into_stats(mode: MatMode, a: &Matrix, b: &Matrix, c: &mut Matrix) -> GemmStats {
    timed(mode, || {
        gemm_blocked(mode, a, b, c, false, BlockSizes::default(), false)
    })
}

/// Blocked multiply with explicit block sizes and an optional scalar-only
/// pin. Test/bench hook: tiny blocks exercise every block boundary;
/// `force_scalar` measures the blocked tier without AVX2 (and proves the
/// two legs bitwise-equal in one binary).
pub fn gemm_into_with(
    mode: MatMode,
    a: &Matrix,
    b: &Matrix,
    c: &mut Matrix,
    blocks: BlockSizes,
    force_scalar: bool,
) -> GemmStats {
    timed(mode, || {
        gemm_blocked(mode, a, b, c, false, blocks, force_scalar)
    })
}

/// Mixed-precision multiply: quantize both operands to the bf16 grid,
/// multiply with f32 accumulation. This is the entry point used by the
/// training engine when `precision = Bf16Mixed`. Quantization is fused
/// into the packing pass — no full-matrix copies are allocated.
pub fn gemm_bf16(mode: MatMode, a: &Matrix, b: &Matrix) -> Matrix {
    let (m, n) = mode.output_shape(a.shape(), b.shape());
    let mut c = Matrix::zeros(m, n);
    let _ = gemm_bf16_into(mode, a, b, &mut c);
    c
}

/// [`gemm_bf16`] into a preallocated output, returning pack accounting.
pub fn gemm_bf16_into(mode: MatMode, a: &Matrix, b: &Matrix, c: &mut Matrix) -> GemmStats {
    timed(mode, || {
        gemm_blocked(mode, a, b, c, true, BlockSizes::default(), false)
    })
}

/// The blocked tier: pack B into panels (quantizing if asked), build the
/// A view (borrow / quantize-copy / transpose-pack), then run the
/// register-tiled engine. Zero-skip row flags are computed on the A view
/// actually fed to the kernels, so f32 and bf16 agree on what "zero"
/// means.
fn gemm_blocked(
    mode: MatMode,
    a: &Matrix,
    b: &Matrix,
    c: &mut Matrix,
    quantize: bool,
    blocks: BlockSizes,
    force_scalar: bool,
) -> GemmStats {
    let (m, n) = mode.output_shape(a.shape(), b.shape());
    assert_eq!(c.shape(), (m, n), "output shape mismatch for {mode}");
    let k = match mode {
        MatMode::NN | MatMode::NT => a.cols(),
        MatMode::TN => a.rows(),
    };
    if m == 0 || n == 0 {
        return GemmStats::default();
    }
    if k == 0 {
        c.as_mut_slice().fill(0.0);
        return GemmStats::default();
    }
    let blocks = blocks.normalized();
    let parallel = m * n * k >= PAR_THRESHOLD;
    let b_layout = match mode {
        MatMode::NN | MatMode::TN => BLayout::KxN,
        MatMode::NT => BLayout::NxK,
    };
    let a_pack = match (mode, quantize) {
        (MatMode::TN, q) => APack::Transpose { quantize: q },
        (_, true) => APack::Copy { quantize: true },
        (_, false) => APack::Borrow,
    };
    let c_slice = c.as_mut_slice();
    let (panels, b_bytes, (a_bytes, simd)) =
        pack::with_packed_b(b.as_slice(), b_layout, k, n, quantize, |bp| {
            pack::with_a_view(a.as_slice(), m, k, a_pack, |av| {
                let mut run = |flags: Option<&[u8]>| {
                    let g = kernel::Gemm {
                        a: av,
                        bp,
                        flags,
                        m,
                        k,
                        n,
                        blocks,
                        force_scalar,
                    };
                    kernel::run(c_slice, &g, parallel)
                };
                if mode == MatMode::NN {
                    pack::with_row_flags(av, m, k, |flags| run(Some(flags)))
                } else {
                    run(None)
                }
            })
        });
    GemmStats {
        packed_bytes: b_bytes + a_bytes,
        panels: panels as u32,
        simd,
    }
}

// ---------------------------------------------------------------------------
// Naive tier: the pre-blocking kernels, kept as a live alternative.
// ---------------------------------------------------------------------------

/// Multiply with the naive (unblocked, unpacked) kernels. This is the
/// tier the automated tuner times the packed kernels against; TN in
/// particular keeps its deliberately bad stride-`m` column walk.
pub fn gemm_into_naive(mode: MatMode, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let expect = mode.output_shape(a.shape(), b.shape());
    assert_eq!(c.shape(), expect, "output shape mismatch for {mode}");
    let _ = timed(mode, || {
        match mode {
            MatMode::NN => naive_nn(a, b, c),
            MatMode::NT => naive_nt(a, b, c),
            MatMode::TN => naive_tn(a, b, c),
        }
        GemmStats::default()
    });
}

/// Naive TN multiply, allocating the output — the tuner's "bad kernel"
/// baseline (`C = Aᵀ·B` via a column-strided walk over `A`).
pub fn gemm_tn_naive(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, n) = MatMode::TN.output_shape(a.shape(), b.shape());
    let mut c = Matrix::zeros(m, n);
    gemm_into_naive(MatMode::TN, a, b, &mut c);
    c
}

/// Naive NN: for each row of C, accumulate k rank-1 row updates with a
/// unit-stride inner loop; per-row zero-skip as in the blocked tier.
fn naive_nn(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let n = b.cols();
    let work = m * n * k;
    let body = |(i, c_row): (usize, &mut [f32])| {
        c_row.fill(0.0);
        let a_row = a.row(i);
        if a_row.iter().take(k).any(|&v| v == 0.0) {
            for (p, &a_ip) in a_row.iter().enumerate().take(k) {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = b.row(p);
                for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                    *c_v += a_ip * b_v;
                }
            }
        } else {
            for (p, &a_ip) in a_row.iter().enumerate().take(k) {
                let b_row = b.row(p);
                for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                    *c_v += a_ip * b_v;
                }
            }
        }
    };
    if work >= PAR_THRESHOLD {
        c.as_mut_slice()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(body);
    } else {
        c.as_mut_slice().chunks_mut(n).enumerate().for_each(body);
    }
}

/// Naive NT: C[i][j] = dot(A row i, B row j) — a scalar reduction.
fn naive_nt(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let n = b.rows();
    let work = m * n * k;
    let body = |(i, c_row): (usize, &mut [f32])| {
        let a_row = a.row(i);
        for (j, c_v) in c_row.iter_mut().enumerate() {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *c_v = acc;
        }
    };
    if work >= PAR_THRESHOLD {
        c.as_mut_slice()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(body);
    } else {
        c.as_mut_slice().chunks_mut(n).enumerate().for_each(body);
    }
}

/// Naive TN: C[i][j] = sum_p A[p][i] * B[p][j] with a column-strided walk
/// over `A` — stride `m` per step.
fn naive_tn(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (k, m) = a.shape();
    let n = b.cols();
    let a_data = a.as_slice();
    let work = m * n * k;
    let body = |(i, c_row): (usize, &mut [f32])| {
        for (j, c_v) in c_row.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a_data[p * m + i] * b.row(p)[j];
            }
            *c_v = acc;
        }
    };
    if work >= PAR_THRESHOLD {
        c.as_mut_slice()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(body);
    } else {
        c.as_mut_slice().chunks_mut(n).enumerate().for_each(body);
    }
}

/// Naive triple-loop reference: the bitwise oracle for every other
/// kernel in this module. Each `C[i][j]` is a sequential mul-then-add
/// over `p` starting from `+0.0`.
pub fn gemm_reference(mode: MatMode, a: &Matrix, b: &Matrix) -> Matrix {
    let (m, n) = mode.output_shape(a.shape(), b.shape());
    let k = match mode {
        MatMode::NN | MatMode::NT => a.cols(),
        MatMode::TN => a.rows(),
    };
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                let av = match mode {
                    MatMode::NN | MatMode::NT => a[(i, p)],
                    MatMode::TN => a[(p, i)],
                };
                let bv = match mode {
                    MatMode::NN | MatMode::TN => b[(p, j)],
                    MatMode::NT => b[(j, p)],
                };
                acc += av * bv;
            }
            c[(i, j)] = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mats(m: usize, k: usize, n: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        (
            Matrix::random(m, k, 1.0, seed),
            Matrix::random(k, n, 1.0, seed + 1),
            Matrix::random(n, k, 1.0, seed + 2),
        )
    }

    fn operands(mode: MatMode, m: usize, k: usize, n: usize, seed: u64) -> (Matrix, Matrix) {
        match mode {
            MatMode::NN => (
                Matrix::random(m, k, 1.0, seed),
                Matrix::random(k, n, 1.0, seed + 1),
            ),
            MatMode::NT => (
                Matrix::random(m, k, 1.0, seed),
                Matrix::random(n, k, 1.0, seed + 1),
            ),
            MatMode::TN => (
                Matrix::random(k, m, 1.0, seed),
                Matrix::random(k, n, 1.0, seed + 1),
            ),
        }
    }

    #[test]
    fn nn_matches_reference() {
        let (a, b, _) = mats(13, 7, 11, 1);
        let c = gemm(MatMode::NN, &a, &b);
        assert_eq!(c, gemm_reference(MatMode::NN, &a, &b));
    }

    #[test]
    fn nt_matches_reference() {
        let (a, _, bt) = mats(13, 7, 11, 2);
        let c = gemm(MatMode::NT, &a, &bt);
        assert_eq!(c, gemm_reference(MatMode::NT, &a, &bt));
    }

    #[test]
    fn tn_matches_reference() {
        let at = Matrix::random(7, 13, 1.0, 3);
        let b = Matrix::random(7, 11, 1.0, 4);
        let c = gemm(MatMode::TN, &at, &b);
        assert_eq!(c, gemm_reference(MatMode::TN, &at, &b));
    }

    #[test]
    fn naive_tier_matches_reference_bitwise() {
        for mode in MatMode::ALL {
            let (a, b) = operands(mode, 13, 9, 11, 40);
            let mut c = Matrix::zeros(13, 11);
            gemm_into_naive(mode, &a, &b, &mut c);
            assert_eq!(c, gemm_reference(mode, &a, &b), "naive {mode}");
        }
        let at = Matrix::random(9, 5, 1.0, 44);
        let b = Matrix::random(9, 6, 1.0, 45);
        assert_eq!(gemm_tn_naive(&at, &b), gemm_reference(MatMode::TN, &at, &b));
    }

    #[test]
    fn tiny_blocks_cross_every_boundary() {
        // Block sizes far smaller than the shape force multiple kc
        // spills, tail panels, and odd row tiles in one multiply.
        let blocks = BlockSizes {
            mc: 5,
            kc: 3,
            nc: 16,
        };
        for mode in MatMode::ALL {
            let (a, b) = operands(mode, 17, 19, 23, 50);
            let mut c = Matrix::zeros(17, 23);
            let stats = gemm_into_with(mode, &a, &b, &mut c, blocks, false);
            assert_eq!(c, gemm_reference(mode, &a, &b), "blocked {mode}");
            assert!(stats.panels > 0);
            assert!(stats.packed_bytes > 0);
        }
    }

    #[test]
    fn scalar_and_auto_kernels_agree_bitwise() {
        for mode in MatMode::ALL {
            let (a, b) = operands(mode, 21, 33, 18, 60);
            let mut auto_c = Matrix::zeros(21, 18);
            let mut scalar_c = Matrix::zeros(21, 18);
            let _ = gemm_into_stats(mode, &a, &b, &mut auto_c);
            let _ = gemm_into_with(mode, &a, &b, &mut scalar_c, BlockSizes::default(), true);
            assert_eq!(auto_c, scalar_c, "{mode}");
        }
    }

    #[test]
    fn zero_rows_take_skip_path_bitwise() {
        let mut a = Matrix::random(12, 10, 1.0, 70);
        // Whole zero rows plus sprinkled zeros exercise both the row
        // flag and the per-element skip.
        for p in 0..10 {
            a[(3, p)] = 0.0;
        }
        a[(0, 2)] = 0.0;
        a[(7, 9)] = 0.0;
        let b = Matrix::random(10, 9, 1.0, 71);
        assert_eq!(
            gemm(MatMode::NN, &a, &b),
            gemm_reference(MatMode::NN, &a, &b)
        );
    }

    #[test]
    fn deep_k_spills_across_kc_blocks() {
        // k > default kc: partial sums round-trip through C exactly.
        let (a, b) = operands(MatMode::NN, 5, 600, 33, 80);
        assert_eq!(
            gemm(MatMode::NN, &a, &b),
            gemm_reference(MatMode::NN, &a, &b)
        );
    }

    #[test]
    fn modes_agree_via_explicit_transposes() {
        // NT(A, B) == NN(A, Bᵀ) and TN(A, B) == NN(Aᵀ, B).
        let a = Matrix::random(9, 6, 1.0, 5);
        let b = Matrix::random(8, 6, 1.0, 6);
        let nt = gemm(MatMode::NT, &a, &b);
        let nn = gemm(MatMode::NN, &a, &b.transposed());
        assert!(nt.approx_eq(&nn, 1e-5));

        let a2 = Matrix::random(6, 9, 1.0, 7);
        let b2 = Matrix::random(6, 8, 1.0, 8);
        let tn = gemm(MatMode::TN, &a2, &b2);
        let nn2 = gemm(MatMode::NN, &a2.transposed(), &b2);
        assert!(tn.approx_eq(&nn2, 1e-5));
    }

    #[test]
    fn identity_multiplication() {
        let a = Matrix::random(5, 5, 1.0, 9);
        let i = Matrix::eye(5);
        assert!(gemm(MatMode::NN, &a, &i).approx_eq(&a, 1e-6));
        assert!(gemm(MatMode::NN, &i, &a).approx_eq(&a, 1e-6));
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Big enough to cross PAR_THRESHOLD.
        let a = Matrix::random(96, 96, 1.0, 10);
        let b = Matrix::random(96, 96, 1.0, 11);
        let c = gemm(MatMode::NN, &a, &b);
        assert_eq!(c, gemm_reference(MatMode::NN, &a, &b));
    }

    #[test]
    fn output_shapes() {
        assert_eq!(MatMode::NN.output_shape((2, 3), (3, 5)), (2, 5));
        assert_eq!(MatMode::NT.output_shape((2, 3), (5, 3)), (2, 5));
        assert_eq!(MatMode::TN.output_shape((3, 2), (3, 5)), (2, 5));
    }

    #[test]
    #[should_panic(expected = "NN: A cols must equal B rows")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 5);
        let _ = gemm(MatMode::NN, &a, &b);
    }

    #[test]
    fn gemm_bf16_quantizes_operands() {
        // With operands exactly on the bf16 grid, bf16 gemm equals f32 gemm.
        let mut a = Matrix::random(8, 8, 1.0, 12);
        let mut b = Matrix::random(8, 8, 1.0, 13);
        a.round_bf16();
        b.round_bf16();
        let full = gemm(MatMode::NN, &a, &b);
        let mixed = gemm_bf16(MatMode::NN, &a, &b);
        assert_eq!(full, mixed);
    }

    #[test]
    fn gemm_bf16_fused_pack_matches_quantize_then_gemm() {
        // The fused quantize-on-pack path must be bitwise identical to
        // materializing bf16 copies first — for every mode.
        for mode in MatMode::ALL {
            let (a, b) = operands(mode, 11, 14, 9, 90);
            let fused = gemm_bf16(mode, &a, &b);
            let staged = gemm_reference(mode, &a.to_bf16(), &b.to_bf16());
            assert_eq!(fused, staged, "{mode}");
        }
    }

    #[test]
    fn gemm_bf16_error_is_bounded() {
        let a = Matrix::random(16, 16, 1.0, 14);
        let b = Matrix::random(16, 16, 1.0, 15);
        let full = gemm(MatMode::NN, &a, &b);
        let mixed = gemm_bf16(MatMode::NN, &a, &b);
        // Two operands each within 2^-8 relative error, k=16 accumulation:
        // generous bound of 0.05 absolute for unit-scale inputs.
        assert!(full.max_abs_diff(&mixed) < 0.05);
    }

    #[test]
    fn zero_sized_edges() {
        let a = Matrix::zeros(0, 4);
        let b = Matrix::zeros(4, 3);
        let c = gemm(MatMode::NN, &a, &b);
        assert_eq!(c.shape(), (0, 3));
        // k == 0: the contraction is empty, C must be all +0.0 (and a
        // stale output must be overwritten).
        let a0 = Matrix::zeros(3, 0);
        let b0 = Matrix::zeros(0, 4);
        let mut c0 = Matrix::random(3, 4, 1.0, 16);
        gemm_into(MatMode::NN, &a0, &b0, &mut c0);
        assert_eq!(c0, Matrix::zeros(3, 4));
    }

    #[test]
    fn phase_accumulator_drains() {
        let _ = take_gemm_phase();
        let (a, b) = operands(MatMode::NT, 8, 8, 8, 17);
        let _ = gemm(MatMode::NT, &a, &b);
        let phase = take_gemm_phase();
        assert_eq!(phase.calls, 1);
        assert!(phase.nt_seconds > 0.0);
        assert_eq!(phase.nn_seconds, 0.0);
        assert!(phase.packed_bytes > 0);
        // Drained: a second take sees zeros.
        assert_eq!(take_gemm_phase(), GemmPhase::default());
    }

    #[test]
    fn stats_match_pack_geometry() {
        for mode in MatMode::ALL {
            let (a, b) = operands(mode, 10, 7, 33, 20);
            let mut c = Matrix::zeros(10, 33);
            let stats = gemm_into_stats(mode, &a, &b, &mut c);
            let (panels, bytes) = crate::pack::pack_geometry(mode, 10, 7, 33);
            assert_eq!(stats.panels, panels, "{mode}");
            assert_eq!(stats.packed_bytes, bytes, "{mode}");
        }
    }
}
