//! Operand packing for the blocked GEMM engine.
//!
//! The micro-kernels in [`crate::kernel`] only ever read two layouts:
//!
//! * **A view** — an `m × k` row-major slice (row `i`, element `p` at
//!   `i * k + p`). For NN/NT in f32 this is the caller's matrix verbatim;
//!   for TN the `k × m` operand is transpose-packed once so the micro-
//!   kernel never takes the stride-`m` column walk; for bf16 the copy is
//!   fused with quantization (the old `gemm_bf16` cloned both operands
//!   first — the pack pass now rounds while it copies).
//! * **Packed B** — `⌈n/NR⌉` panels, each `k × NR`, laid out panel-major:
//!   element `(p, lane)` of panel `jp` lives at `jp·k·NR + p·NR + lane`.
//!   Tail-panel lanes beyond `n` are zero so the kernels always run full
//!   width; a zero lane contributes `±0.0` products that never reach `C`.
//!
//! Pack buffers are thread-local and reused across calls, so steady-state
//! training steps do no per-GEMM slab allocation.

use crate::bf16;
use std::cell::RefCell;

/// Register-tile rows: each micro-kernel invocation updates up to `MR`
/// rows of `C`.
pub const MR: usize = 4;
/// Register-tile columns: the packed-panel width, two 8-lane AVX2 vectors.
pub const NR: usize = 16;

/// Cache-blocking parameters. `kc` bounds the contracted slice held in
/// L1 alongside one B panel (`kc × NR` floats); `mc` bounds the A rows
/// kept warm in L2 while a panel group streams; `nc` is the panel-group
/// width (rounded up to a multiple of [`NR`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSizes {
    pub mc: usize,
    pub kc: usize,
    pub nc: usize,
}

impl Default for BlockSizes {
    fn default() -> Self {
        BlockSizes {
            mc: 64,
            kc: 256,
            nc: 256,
        }
    }
}

impl BlockSizes {
    /// Clamp degenerate values and round `nc` up to a whole panel.
    pub(crate) fn normalized(self) -> Self {
        BlockSizes {
            mc: self.mc.max(1),
            kc: self.kc.max(1),
            nc: self.nc.max(1).div_ceil(NR) * NR,
        }
    }
}

/// Where element `(p, j)` of the logical `k × n` right-hand operand
/// lives in the source slice.
#[derive(Debug, Clone, Copy)]
pub(crate) enum BLayout {
    /// `k × n` row-major (`b[p·n + j]`): the B operand of NN and TN.
    KxN,
    /// `n × k` row-major (`b[j·k + p]`): the B operand of NT (`C = A·Bᵀ`).
    NxK,
}

thread_local! {
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static ROW_FLAGS: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with the thread-local B pack buffer filled from `src`.
/// Returns `(panels, packed_bytes, f-result)`.
pub(crate) fn with_packed_b<R>(
    src: &[f32],
    layout: BLayout,
    k: usize,
    n: usize,
    quantize: bool,
    f: impl FnOnce(&[f32]) -> R,
) -> (usize, u64, R) {
    let panels = n.div_ceil(NR);
    let len = panels * k * NR;
    PACK_B.with(|buf| {
        let mut buf = buf.borrow_mut();
        buf.clear();
        buf.resize(len, 0.0);
        match layout {
            BLayout::KxN => {
                for jp in 0..panels {
                    let j0 = jp * NR;
                    let lanes = (n - j0).min(NR);
                    let panel = &mut buf[jp * k * NR..(jp + 1) * k * NR];
                    for p in 0..k {
                        panel[p * NR..p * NR + lanes]
                            .copy_from_slice(&src[p * n + j0..p * n + j0 + lanes]);
                    }
                }
            }
            BLayout::NxK => {
                for jp in 0..panels {
                    let j0 = jp * NR;
                    let lanes = (n - j0).min(NR);
                    let panel = &mut buf[jp * k * NR..(jp + 1) * k * NR];
                    for lane in 0..lanes {
                        let row = &src[(j0 + lane) * k..(j0 + lane) * k + k];
                        for (p, &v) in row.iter().enumerate() {
                            panel[p * NR + lane] = v;
                        }
                    }
                }
            }
        }
        if quantize {
            bf16::round_slice(&mut buf);
        }
        let r = f(&buf);
        (panels, (len * std::mem::size_of::<f32>()) as u64, r)
    })
}

/// What the engine needs as its A view, and how to build it.
#[derive(Debug, Clone, Copy)]
pub(crate) enum APack {
    /// Use the caller's slice directly (already `m × k` row-major, f32).
    Borrow,
    /// Copy (NN/NT bf16: quantize-on-copy keeps the layout).
    Copy { quantize: bool },
    /// Transpose-pack a `k × m` source into `m × k` (TN); optionally
    /// quantize while packing.
    Transpose { quantize: bool },
}

/// Run `f` with the A view for `src` (logical `m` rows × `k` contracted),
/// packing into the thread-local A buffer when needed. Returns
/// `(packed_bytes, f-result)`.
pub(crate) fn with_a_view<R>(
    src: &[f32],
    m: usize,
    k: usize,
    pack: APack,
    f: impl FnOnce(&[f32]) -> R,
) -> (u64, R) {
    match pack {
        APack::Borrow => (0, f(src)),
        APack::Copy { quantize } => PACK_A.with(|buf| {
            let mut buf = buf.borrow_mut();
            buf.clear();
            buf.extend_from_slice(&src[..m * k]);
            if quantize {
                bf16::round_slice(&mut buf);
            }
            ((m * k * std::mem::size_of::<f32>()) as u64, f(&buf))
        }),
        APack::Transpose { quantize } => PACK_A.with(|buf| {
            let mut buf = buf.borrow_mut();
            buf.clear();
            buf.resize(m * k, 0.0);
            // Blocked transpose: src is k × m, dst is m × k.
            const BLK: usize = 32;
            for p0 in (0..k).step_by(BLK) {
                let p1 = (p0 + BLK).min(k);
                for i0 in (0..m).step_by(BLK) {
                    let i1 = (i0 + BLK).min(m);
                    for p in p0..p1 {
                        for i in i0..i1 {
                            buf[i * k + p] = src[p * m + i];
                        }
                    }
                }
            }
            if quantize {
                bf16::round_slice(&mut buf);
            }
            ((m * k * std::mem::size_of::<f32>()) as u64, f(&buf))
        }),
    }
}

/// Run `f` with per-row "contains a zero" flags for the `m × k` A view
/// (the NN zero-skip decision, hoisted ahead of packing).
pub(crate) fn with_row_flags<R>(
    a_view: &[f32],
    m: usize,
    k: usize,
    f: impl FnOnce(&[u8]) -> R,
) -> R {
    ROW_FLAGS.with(|buf| {
        let mut buf = buf.borrow_mut();
        buf.clear();
        buf.resize(m, 0);
        for (i, flag) in buf.iter_mut().enumerate() {
            if a_view[i * k..i * k + k].contains(&0.0) {
                *flag = 1;
            }
        }
        f(&buf)
    })
}

/// Pack traffic the blocked engine generates for an f32 multiply of the
/// given mode and shape: `(B panels, packed bytes)`. Pure geometry — used
/// by the simulator's compute mirror so trace counters agree across the
/// exec and sim planes without running a kernel.
pub fn pack_geometry(mode: crate::gemm::MatMode, m: usize, k: usize, n: usize) -> (u32, u64) {
    if m == 0 || n == 0 || k == 0 {
        return (0, 0);
    }
    let panels = n.div_ceil(NR);
    let mut bytes = (panels * k * NR * std::mem::size_of::<f32>()) as u64;
    if mode == crate::gemm::MatMode::TN {
        bytes += (m * k * std::mem::size_of::<f32>()) as u64;
    }
    (panels as u32, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_b_kxn_layout_and_zero_padding() {
        // 2 × 3 B, one panel: lane 0..3 filled, lanes 3..NR zero.
        let b = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let (panels, bytes, ()) = with_packed_b(&b, BLayout::KxN, 2, 3, false, |bp| {
            assert_eq!(bp.len(), 2 * NR);
            assert_eq!(&bp[0..3], &[1.0, 2.0, 3.0]);
            assert!(bp[3..NR].iter().all(|&v| v == 0.0));
            assert_eq!(&bp[NR..NR + 3], &[4.0, 5.0, 6.0]);
        });
        assert_eq!(panels, 1);
        assert_eq!(bytes, (2 * NR * 4) as u64);
    }

    #[test]
    fn packed_b_nxk_transposes() {
        // NT: B is n × k = 2 × 3; packed panel must hold B[j][p] at lane j.
        let b = [1.0f32, 2.0, 3.0, 10.0, 20.0, 30.0];
        with_packed_b(&b, BLayout::NxK, 3, 2, false, |bp| {
            assert_eq!(bp[0], 1.0); // p=0 lane 0
            assert_eq!(bp[1], 10.0); // p=0 lane 1
            assert_eq!(bp[NR], 2.0); // p=1 lane 0
            assert_eq!(bp[NR + 1], 20.0);
            assert_eq!(bp[2 * NR], 3.0);
            assert_eq!(bp[2 * NR + 1], 30.0);
        });
    }

    #[test]
    fn transpose_pack_matches_manual() {
        // src is k × m = 2 × 3; view must be m × k = 3 × 2.
        let src = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let (bytes, ()) = with_a_view(&src, 3, 2, APack::Transpose { quantize: false }, |av| {
            assert_eq!(av, &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        });
        assert_eq!(bytes, 24);
    }

    #[test]
    fn row_flags_mark_zero_rows() {
        let a = [1.0f32, 2.0, 0.0, 3.0, 4.0, 5.0];
        with_row_flags(&a, 3, 2, |flags| {
            assert_eq!(flags, &[0, 1, 0]);
        });
    }

    #[test]
    fn geometry_matches_packing() {
        use crate::gemm::MatMode;
        let (m, k, n) = (10, 7, 33);
        let b = vec![1.0f32; k * n];
        let (panels, bytes, ()) = with_packed_b(&b, BLayout::KxN, k, n, false, |_| ());
        assert_eq!(pack_geometry(MatMode::NN, m, k, n), (panels as u32, bytes));
        let (tn_panels, tn_bytes) = pack_geometry(MatMode::TN, m, k, n);
        assert_eq!(tn_panels as usize, panels);
        assert_eq!(tn_bytes, bytes + (m * k * 4) as u64);
        assert_eq!(pack_geometry(MatMode::NN, 0, k, n), (0, 0));
    }
}
