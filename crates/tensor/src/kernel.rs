//! Blocked GEMM engine: cache blocking, register-tiled micro-kernels,
//! and the AVX2 inner loop behind the `simd` feature.
//!
//! The engine walks `C` in `mc`-row blocks × `nc`-wide panel groups ×
//! `kc`-deep contracted slices, calling one of two micro-kernels per
//! (row-tile, panel): a dense `MR×NR` quad kernel, or a single-row
//! kernel that carries the NN zero-skip test. Both exist in scalar and
//! AVX2 forms that are **bitwise identical**: every `C[i][j]` is a
//! sequential mul-then-add over `p` starting from `+0.0`, exactly the
//! order of `gemm_reference`. The AVX2 path uses explicit
//! `_mm256_mul_ps` + `_mm256_add_ps` (never FMA — fused rounding would
//! break the oracle), and lane-parallelism across `j` is not a
//! reassociation, so SIMD and scalar agree bit-for-bit. Partial sums are
//! spilled to `C` between `kc` blocks; an f32 store/load round-trip is
//! exact, so blocking does not perturb results either.

use crate::pack::{BlockSizes, MR, NR};
use rayon::prelude::*;

/// One fully-packed multiply: `C[m×n] = Aview[m×k] · Bpacked`.
pub(crate) struct Gemm<'a> {
    /// `m × k` row-major A view (borrowed or packed).
    pub a: &'a [f32],
    /// Panel-major packed B (see [`crate::pack`]).
    pub bp: &'a [f32],
    /// Per-row "has a zero" flags (NN zero-skip); `None` disables skip.
    pub flags: Option<&'a [u8]>,
    pub m: usize,
    pub k: usize,
    pub n: usize,
    pub blocks: BlockSizes,
    pub force_scalar: bool,
}

/// Whether the AVX2 micro-kernels are compiled in *and* the CPU has AVX2.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub(crate) fn avx2_available() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
pub(crate) fn avx2_available() -> bool {
    false
}

/// Run the blocked engine over `c`. Returns `true` when the AVX2 kernels
/// were used. `parallel` splits `C` into MR-aligned row bands, one per
/// rayon worker — panel-group granularity inside each band.
pub(crate) fn run(c: &mut [f32], g: &Gemm<'_>, parallel: bool) -> bool {
    debug_assert_eq!(c.len(), g.m * g.n);
    let simd = !g.force_scalar && avx2_available();
    let workers = rayon::current_num_threads().max(1);
    if parallel && workers > 1 && g.m > MR {
        let chunk_rows = g.m.div_ceil(workers).div_ceil(MR) * MR;
        c.par_chunks_mut(chunk_rows * g.n)
            .enumerate()
            .for_each(|(ci, band)| band_loop(band, ci * chunk_rows, g, simd));
    } else {
        band_loop(c, 0, g, simd);
    }
    simd
}

/// Blocked loop nest over one contiguous band of `C` rows. `row0` maps
/// band-local rows to global A-view rows.
fn band_loop(band: &mut [f32], row0: usize, g: &Gemm<'_>, simd: bool) {
    let (n, k) = (g.n, g.k);
    let rows = band.len() / n;
    let panels = n.div_ceil(NR);
    let nc_panels = g.blocks.nc / NR;
    for ic in (0..rows).step_by(g.blocks.mc) {
        let ic_end = (ic + g.blocks.mc).min(rows);
        for jc in (0..panels).step_by(nc_panels) {
            let jc_end = (jc + nc_panels).min(panels);
            for pc in (0..k).step_by(g.blocks.kc) {
                let pc_end = (pc + g.blocks.kc).min(k);
                let first = pc == 0;
                for jp in jc..jc_end {
                    let bpanel = &g.bp[jp * k * NR..(jp + 1) * k * NR];
                    let j0 = jp * NR;
                    let lanes = (n - j0).min(NR);
                    let mut i = ic;
                    while i < ic_end {
                        let gi = row0 + i;
                        let quad = i + MR <= ic_end
                            && g.flags
                                .is_none_or(|f| f[gi..gi + MR].iter().all(|&x| x == 0));
                        if quad {
                            quad_tile(g, gi, bpanel, pc, pc_end, band, i, j0, lanes, first, simd);
                            i += MR;
                        } else {
                            let skip = g.flags.is_some_and(|f| f[gi] != 0);
                            row_tile(
                                g, gi, bpanel, pc, pc_end, band, i, j0, lanes, first, skip, simd,
                            );
                            i += 1;
                        }
                    }
                }
            }
        }
    }
}

/// Dense `MR × lanes` tile update. Full-width panels hit `C` in place;
/// tail panels round-trip through a stack tile (exact: f32 copy).
#[allow(clippy::too_many_arguments)]
fn quad_tile(
    g: &Gemm<'_>,
    row: usize,
    bpanel: &[f32],
    p0: usize,
    p1: usize,
    band: &mut [f32],
    ci: usize,
    j0: usize,
    lanes: usize,
    first: bool,
    simd: bool,
) {
    let a = g.a[row * g.k..].as_ptr();
    let n = g.n;
    if lanes == NR {
        // SAFETY: rows ci..ci+MR and cols j0..j0+NR are in-bounds for the
        // band (quad requires i+MR <= ic_end, full panel requires
        // j0+NR <= n); A rows row..row+MR each hold k elements.
        unsafe {
            quad_kernel(
                a,
                g.k,
                bpanel.as_ptr(),
                band.as_mut_ptr().add(ci * n + j0),
                n,
                p0,
                p1,
                first,
                simd,
            );
        }
        return;
    }
    let mut tile = [0.0f32; MR * NR];
    if !first {
        for r in 0..MR {
            tile[r * NR..r * NR + lanes].copy_from_slice(&band[(ci + r) * n + j0..][..lanes]);
        }
    }
    // SAFETY: the stack tile is MR × NR with stride NR.
    unsafe {
        quad_kernel(
            a,
            g.k,
            bpanel.as_ptr(),
            tile.as_mut_ptr(),
            NR,
            p0,
            p1,
            first,
            simd,
        );
    }
    for r in 0..MR {
        band[(ci + r) * n + j0..][..lanes].copy_from_slice(&tile[r * NR..r * NR + lanes]);
    }
}

/// Single-row tile update carrying the zero-skip flag.
#[allow(clippy::too_many_arguments)]
fn row_tile(
    g: &Gemm<'_>,
    row: usize,
    bpanel: &[f32],
    p0: usize,
    p1: usize,
    band: &mut [f32],
    ci: usize,
    j0: usize,
    lanes: usize,
    first: bool,
    skip: bool,
    simd: bool,
) {
    let a = g.a[row * g.k..].as_ptr();
    let n = g.n;
    if lanes == NR {
        // SAFETY: same bounds argument as `quad_tile`, single row.
        unsafe {
            row_kernel(
                a,
                bpanel.as_ptr(),
                band.as_mut_ptr().add(ci * n + j0),
                p0,
                p1,
                first,
                skip,
                simd,
            );
        }
        return;
    }
    let mut tile = [0.0f32; NR];
    if !first {
        tile[..lanes].copy_from_slice(&band[ci * n + j0..][..lanes]);
    }
    // SAFETY: the stack tile is one NR-wide row.
    unsafe {
        row_kernel(
            a,
            bpanel.as_ptr(),
            tile.as_mut_ptr(),
            p0,
            p1,
            first,
            skip,
            simd,
        );
    }
    band[ci * n + j0..][..lanes].copy_from_slice(&tile[..lanes]);
}

/// # Safety
/// `a` must be valid for `MR` rows of `k` elements (stride `k`); `b` for
/// `p1·NR` elements; `c` for `MR` rows of `NR` elements at stride
/// `c_stride`.
#[allow(clippy::too_many_arguments)]
unsafe fn quad_kernel(
    a: *const f32,
    k: usize,
    b: *const f32,
    c: *mut f32,
    c_stride: usize,
    p0: usize,
    p1: usize,
    first: bool,
    simd: bool,
) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd {
        return quad_kernel_avx2(a, k, b, c, c_stride, p0, p1, first);
    }
    let _ = simd;
    quad_kernel_scalar(a, k, b, c, c_stride, p0, p1, first);
}

/// # Safety
/// See [`quad_kernel`].
#[allow(clippy::too_many_arguments)]
unsafe fn quad_kernel_scalar(
    a: *const f32,
    k: usize,
    b: *const f32,
    c: *mut f32,
    c_stride: usize,
    p0: usize,
    p1: usize,
    first: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if !first {
        for (r, acc_r) in acc.iter_mut().enumerate() {
            std::ptr::copy_nonoverlapping(c.add(r * c_stride), acc_r.as_mut_ptr(), NR);
        }
    }
    for p in p0..p1 {
        let brow = std::slice::from_raw_parts(b.add(p * NR), NR);
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let av = *a.add(r * k + p);
            // Lane-independent mul-then-add: the compiler may vectorize
            // across lanes but cannot reassociate within one.
            for (acc_v, &b_v) in acc_r.iter_mut().zip(brow) {
                *acc_v += av * b_v;
            }
        }
    }
    for (r, acc_r) in acc.iter().enumerate() {
        std::ptr::copy_nonoverlapping(acc_r.as_ptr(), c.add(r * c_stride), NR);
    }
}

/// # Safety
/// See [`quad_kernel`]; additionally requires AVX2 (checked by caller).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn quad_kernel_avx2(
    a: *const f32,
    k: usize,
    b: *const f32,
    c: *mut f32,
    c_stride: usize,
    p0: usize,
    p1: usize,
    first: bool,
) {
    use core::arch::x86_64::*;
    let mut acc = [_mm256_setzero_ps(); 2 * MR];
    if !first {
        for r in 0..MR {
            acc[2 * r] = _mm256_loadu_ps(c.add(r * c_stride));
            acc[2 * r + 1] = _mm256_loadu_ps(c.add(r * c_stride + 8));
        }
    }
    for p in p0..p1 {
        let b0 = _mm256_loadu_ps(b.add(p * NR));
        let b1 = _mm256_loadu_ps(b.add(p * NR + 8));
        for r in 0..MR {
            let av = _mm256_set1_ps(*a.add(r * k + p));
            // mul + add, not FMA: keeps per-lane rounding identical to
            // the scalar kernel and gemm_reference.
            acc[2 * r] = _mm256_add_ps(acc[2 * r], _mm256_mul_ps(av, b0));
            acc[2 * r + 1] = _mm256_add_ps(acc[2 * r + 1], _mm256_mul_ps(av, b1));
        }
    }
    for r in 0..MR {
        _mm256_storeu_ps(c.add(r * c_stride), acc[2 * r]);
        _mm256_storeu_ps(c.add(r * c_stride + 8), acc[2 * r + 1]);
    }
}

/// # Safety
/// `a` must be valid for `p1` elements; `b` for `p1·NR`; `c` for `NR`.
#[allow(clippy::too_many_arguments)]
unsafe fn row_kernel(
    a: *const f32,
    b: *const f32,
    c: *mut f32,
    p0: usize,
    p1: usize,
    first: bool,
    skip: bool,
    simd: bool,
) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd {
        return row_kernel_avx2(a, b, c, p0, p1, first, skip);
    }
    let _ = simd;
    let mut acc = [0.0f32; NR];
    if !first {
        std::ptr::copy_nonoverlapping(c, acc.as_mut_ptr(), NR);
    }
    for p in p0..p1 {
        let av = *a.add(p);
        // Zero-skip: adding `±0 · b` to a finite accumulator that started
        // from +0.0 is a bitwise no-op, so skipping is exact (and is what
        // makes causal-mask columns free in the LM decode path).
        if skip && av == 0.0 {
            continue;
        }
        let brow = std::slice::from_raw_parts(b.add(p * NR), NR);
        for (acc_v, &b_v) in acc.iter_mut().zip(brow) {
            *acc_v += av * b_v;
        }
    }
    std::ptr::copy_nonoverlapping(acc.as_ptr(), c, NR);
}

/// # Safety
/// See [`row_kernel`]; additionally requires AVX2 (checked by caller).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn row_kernel_avx2(
    a: *const f32,
    b: *const f32,
    c: *mut f32,
    p0: usize,
    p1: usize,
    first: bool,
    skip: bool,
) {
    use core::arch::x86_64::*;
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    if !first {
        acc0 = _mm256_loadu_ps(c);
        acc1 = _mm256_loadu_ps(c.add(8));
    }
    for p in p0..p1 {
        let av = *a.add(p);
        if skip && av == 0.0 {
            continue;
        }
        let avv = _mm256_set1_ps(av);
        let b0 = _mm256_loadu_ps(b.add(p * NR));
        let b1 = _mm256_loadu_ps(b.add(p * NR + 8));
        acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(avv, b0));
        acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(avv, b1));
    }
    _mm256_storeu_ps(c, acc0);
    _mm256_storeu_ps(c.add(8), acc1);
}
