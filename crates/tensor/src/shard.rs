//! Block decomposition helpers for the 4D algorithm.
//!
//! Algorithm 1 distributes the input activations `I` and the weight matrix
//! `W` as 2D blocks over planes of the `G_x × G_y × G_z` grid, and further
//! shards each `W` block along Z. These helpers cut and reassemble such
//! blocks. All partitions require exact divisibility — the training engine
//! validates grid/shape compatibility up front rather than padding, which
//! matches AxoNN's requirement that hidden sizes divide the grid.

use crate::matrix::Matrix;

/// Which block of a `parts_r × parts_c` partition to take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSpec {
    pub parts_r: usize,
    pub parts_c: usize,
    pub idx_r: usize,
    pub idx_c: usize,
}

impl BlockSpec {
    pub fn new(parts_r: usize, parts_c: usize, idx_r: usize, idx_c: usize) -> Self {
        assert!(idx_r < parts_r, "row block index {idx_r} out of {parts_r}");
        assert!(idx_c < parts_c, "col block index {idx_c} out of {parts_c}");
        BlockSpec {
            parts_r,
            parts_c,
            idx_r,
            idx_c,
        }
    }
}

/// Extract the 2D block described by `spec` from `m`.
///
/// # Panics
/// If the matrix dimensions are not divisible by the partition counts.
pub fn block_of(m: &Matrix, spec: BlockSpec) -> Matrix {
    let (rows, cols) = m.shape();
    assert_eq!(
        rows % spec.parts_r,
        0,
        "rows {rows} not divisible by {} row parts",
        spec.parts_r
    );
    assert_eq!(
        cols % spec.parts_c,
        0,
        "cols {cols} not divisible by {} col parts",
        spec.parts_c
    );
    let br = rows / spec.parts_r;
    let bc = cols / spec.parts_c;
    let r0 = spec.idx_r * br;
    let c0 = spec.idx_c * bc;
    Matrix::from_fn(br, bc, |r, c| m[(r0 + r, c0 + c)])
}

/// Row-shard `m` into `parts` equal slabs and return slab `idx`.
pub fn shard_rows(m: &Matrix, parts: usize, idx: usize) -> Matrix {
    block_of(m, BlockSpec::new(parts, 1, idx, 0))
}

/// Reassemble row slabs (inverse of [`shard_rows`] over all indices).
pub fn unshard_rows(shards: &[Matrix]) -> Matrix {
    concat_rows(shards)
}

/// Stack matrices vertically. All inputs must share a column count.
pub fn concat_rows(parts: &[Matrix]) -> Matrix {
    assert!(!parts.is_empty(), "concat_rows of nothing");
    let cols = parts[0].cols();
    let rows: usize = parts
        .iter()
        .map(|p| {
            assert_eq!(p.cols(), cols, "column mismatch in concat_rows");
            p.rows()
        })
        .sum();
    let mut data = Vec::with_capacity(rows * cols);
    for p in parts {
        data.extend_from_slice(p.as_slice());
    }
    Matrix::from_vec(rows, cols, data)
}

/// Stack matrices horizontally. All inputs must share a row count.
pub fn concat_cols(parts: &[Matrix]) -> Matrix {
    assert!(!parts.is_empty(), "concat_cols of nothing");
    let rows = parts[0].rows();
    let cols: usize = parts
        .iter()
        .map(|p| {
            assert_eq!(p.rows(), rows, "row mismatch in concat_cols");
            p.cols()
        })
        .sum();
    let mut out = Matrix::zeros(rows, cols);
    for r in 0..rows {
        let dst = out.row_mut(r);
        let mut off = 0;
        for p in parts {
            let src = p.row(r);
            dst[off..off + src.len()].copy_from_slice(src);
            off += src.len();
        }
    }
    out
}

/// Reassemble a full matrix from its `parts_r × parts_c` blocks laid out in
/// row-major block order.
pub fn assemble_blocks(blocks: &[Matrix], parts_r: usize, parts_c: usize) -> Matrix {
    assert_eq!(blocks.len(), parts_r * parts_c, "wrong number of blocks");
    let rows: Vec<Matrix> = (0..parts_r)
        .map(|i| concat_cols(&blocks[i * parts_c..(i + 1) * parts_c]))
        .collect();
    concat_rows(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_extraction_round_trip() {
        let m = Matrix::from_fn(6, 8, |r, c| (r * 8 + c) as f32);
        let mut blocks = Vec::new();
        for i in 0..3 {
            for j in 0..4 {
                blocks.push(block_of(&m, BlockSpec::new(3, 4, i, j)));
            }
        }
        assert_eq!(assemble_blocks(&blocks, 3, 4), m);
    }

    #[test]
    fn block_contents() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let b = block_of(&m, BlockSpec::new(2, 2, 1, 0));
        assert_eq!(b.shape(), (2, 2));
        assert_eq!(b.as_slice(), &[8.0, 9.0, 12.0, 13.0]);
    }

    #[test]
    fn shard_and_unshard_rows() {
        let m = Matrix::random(12, 5, 1.0, 3);
        let shards: Vec<Matrix> = (0..4).map(|i| shard_rows(&m, 4, i)).collect();
        assert!(shards.iter().all(|s| s.shape() == (3, 5)));
        assert_eq!(unshard_rows(&shards), m);
    }

    #[test]
    fn concat_cols_round_trip() {
        let m = Matrix::random(5, 12, 1.0, 4);
        let parts: Vec<Matrix> = (0..3)
            .map(|j| block_of(&m, BlockSpec::new(1, 3, 0, j)))
            .collect();
        assert_eq!(concat_cols(&parts), m);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_partition_panics() {
        let m = Matrix::zeros(5, 5);
        let _ = block_of(&m, BlockSpec::new(2, 1, 0, 0));
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_block_panics() {
        let _ = BlockSpec::new(2, 2, 2, 0);
    }

    #[test]
    fn single_part_is_identity() {
        let m = Matrix::random(7, 7, 1.0, 5);
        assert_eq!(block_of(&m, BlockSpec::new(1, 1, 0, 0)), m);
    }
}
