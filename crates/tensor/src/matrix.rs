//! Row-major `f32` matrices with the small set of operations the training
//! stack needs: construction, random fills, elementwise arithmetic,
//! transposition, and comparison helpers for tests.

use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// An all-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// The identity matrix of order `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from an existing row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Build from a closure over (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Deterministic uniform random fill in `[-scale, scale]`, seeded.
    /// All model initialisation in the stack goes through this so runs are
    /// reproducible.
    pub fn random(rows: usize, cols: usize, scale: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = Uniform::new_inclusive(-scale, scale);
        let data = (0..rows * cols).map(|_| dist.sample(&mut rng)).collect();
        Matrix { rows, cols, data }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// (rows, cols).
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the underlying row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// An explicit transposed copy.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        // Blocked transpose for cache friendliness on large matrices.
        const B: usize = 32;
        for rb in (0..self.rows).step_by(B) {
            for cb in (0..self.cols).step_by(B) {
                for r in rb..(rb + B).min(self.rows) {
                    for c in cb..(cb + B).min(self.cols) {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self -= other`.
    pub fn sub_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in sub_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// `self *= s` elementwise.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// `self += s * other` (axpy).
    pub fn axpy(&mut self, s: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in axpy");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Quantize every element to the bf16 grid (mixed-precision operand
    /// preparation).
    pub fn round_bf16(&mut self) {
        crate::bf16::round_slice(&mut self.data);
    }

    /// A bf16-rounded copy.
    pub fn to_bf16(&self) -> Matrix {
        let mut m = self.clone();
        m.round_bf16();
        m
    }

    /// Largest absolute elementwise difference; `f32::INFINITY` on shape
    /// mismatch would hide bugs, so shapes must match.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch in max_abs_diff"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|x| (*x as f64).powi(2))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// FNV-1a hash over the shape and the exact bit patterns of every
    /// element. Used for checkpoint integrity checks: any single bit flip
    /// in shape or data changes the digest.
    pub fn fnv1a64(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(&(self.rows as u64).to_le_bytes());
        mix(&(self.cols as u64).to_le_bytes());
        for x in &self.data {
            mix(&x.to_bits().to_le_bytes());
        }
        h
    }

    /// True if all elements are within `tol` of `other`, scaled by
    /// magnitude (mixed absolute/relative comparison for tests).
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        if self.shape() != other.shape() {
            return false;
        }
        self.data.iter().zip(&other.data).all(|(a, b)| {
            let scale = 1.0f32.max(a.abs()).max(b.abs());
            (a - b).abs() <= tol * scale
        })
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn eye_is_identity_under_indexing() {
        let m = Matrix::eye(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_fn_row_major_order() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_checks_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 5]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::random(37, 53, 1.0, 7);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn transpose_correct() {
        let m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let t = m.transposed();
        assert_eq!(t.shape(), (2, 3));
        for r in 0..3 {
            for c in 0..2 {
                assert_eq!(m[(r, c)], t[(c, r)]);
            }
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = Matrix::random(8, 8, 0.5, 42);
        let b = Matrix::random(8, 8, 0.5, 42);
        let c = Matrix::random(8, 8, 0.5, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|x| x.abs() <= 0.5));
    }

    #[test]
    fn arithmetic_ops() {
        let mut a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 2.0);
        a.add_assign(&b);
        assert_eq!(a, Matrix::full(2, 2, 3.0));
        a.sub_assign(&b);
        assert_eq!(a, Matrix::full(2, 2, 1.0));
        a.scale(4.0);
        assert_eq!(a, Matrix::full(2, 2, 4.0));
        a.axpy(0.5, &b);
        assert_eq!(a, Matrix::full(2, 2, 5.0));
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Matrix::full(2, 2, 100.0);
        let mut b = a.clone();
        b[(0, 0)] = 100.5;
        assert!(a.approx_eq(&b, 0.01));
        assert!(!a.approx_eq(&b, 0.001));
        assert!(!a.approx_eq(&Matrix::zeros(2, 3), 1.0));
    }

    #[test]
    fn frobenius_norm_simple() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn bf16_rounding_on_matrix() {
        let mut m = Matrix::from_vec(1, 2, vec![1.0, 1.0 + 2f32.powi(-10)]);
        m.round_bf16();
        assert_eq!(m.as_slice(), &[1.0, 1.0]);
    }
}
