//! Dense matrix kernels for the AxoNN-rs reproduction stack.
//!
//! This crate stands in for cuBLAS / rocBLAS in the original AxoNN: it
//! provides row-major `f32` matrices, a software [`Bf16`] storage type used
//! to emulate the paper's mixed-precision (bf16 compute / f32 master
//! weights) regime, and a blocked/packed GEMM kernel hierarchy (cache
//! blocking, register-tiled micro-kernels over packed panels, AVX2 inner
//! loop behind the `simd` feature) with a retained naive tier so the
//! NN / NT / TN operand modes have *genuinely different* cost profiles
//! (Section V-C of the paper). The mode-dependent performance difference is
//! what makes the automated kernel tuner in `axonn-core` meaningful on CPU,
//! just as the rocBLAS TN/NN gap made it meaningful on Frontier. Every
//! kernel tier is bitwise identical to [`gemm::gemm_reference`].

pub mod bf16;
pub mod gemm;
mod kernel;
pub mod matrix;
pub mod pack;
pub mod shard;

pub use bf16::Bf16;
pub use gemm::{
    gemm, gemm_bf16, gemm_bf16_into, gemm_into, gemm_into_naive, gemm_into_stats, gemm_into_with,
    gemm_reference, gemm_tn_naive, take_gemm_phase, GemmPhase, GemmStats, MatMode,
};
pub use matrix::Matrix;
pub use pack::{pack_geometry, BlockSizes, MR, NR};
pub use shard::{
    assemble_blocks, block_of, concat_cols, concat_rows, shard_rows, unshard_rows, BlockSpec,
};
