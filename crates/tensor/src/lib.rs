//! Dense matrix kernels for the AxoNN-rs reproduction stack.
//!
//! This crate stands in for cuBLAS / rocBLAS in the original AxoNN: it
//! provides row-major `f32` matrices, a software [`Bf16`] storage type used
//! to emulate the paper's mixed-precision (bf16 compute / f32 master
//! weights) regime, and tiled, rayon-parallel GEMM kernels with three
//! *genuinely different* code paths for the NN / NT / TN operand modes
//! (Section V-C of the paper). The mode-dependent performance difference is
//! what makes the automated kernel tuner in `axonn-core` meaningful on CPU,
//! just as the rocBLAS TN/NN gap made it meaningful on Frontier.

pub mod bf16;
pub mod gemm;
pub mod matrix;
pub mod shard;

pub use bf16::Bf16;
pub use gemm::{gemm, gemm_bf16, gemm_into, gemm_reference, MatMode};
pub use matrix::Matrix;
pub use shard::{
    assemble_blocks, block_of, concat_cols, concat_rows, shard_rows, unshard_rows, BlockSpec,
};
