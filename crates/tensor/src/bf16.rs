//! Software bfloat16.
//!
//! The paper trains in mixed precision: bf16 matmul operands and
//! activations with f32 master weights and accumulation (Section VI-A,
//! citing Kalamkar et al.). There is no hardware bf16 on the CPUs we run
//! on, so this module implements the format in software: the top 16 bits of
//! an IEEE-754 `f32`, with round-to-nearest-even on conversion.

/// A bfloat16 value stored as the upper 16 bits of an `f32`.
///
/// bf16 keeps the full 8-bit exponent of `f32` (hence the paper's
/// preference for it over fp16: same dynamic range as fp32) but only
/// 7 mantissa bits, so conversion from `f32` loses precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Bf16(pub u16);

impl Bf16 {
    pub const ZERO: Bf16 = Bf16(0);
    pub const ONE: Bf16 = Bf16(0x3f80);

    /// Convert from `f32` with round-to-nearest-even, matching the
    /// behaviour of hardware bf16 conversion instructions.
    #[inline]
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        if x.is_nan() {
            // Quiet NaN, preserving the sign bit.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Round to nearest even: add 0x7FFF plus the LSB of the result.
        let round_bit = (bits >> 16) & 1;
        let rounded = bits.wrapping_add(0x7fff + round_bit);
        Bf16((rounded >> 16) as u16)
    }

    /// Widen back to `f32` (exact: bf16 values are a subset of f32).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Round an `f32` through bf16 and back, i.e. quantize to the bf16
    /// grid. This is the operation applied to GEMM operands in
    /// mixed-precision mode.
    #[inline]
    pub fn round_f32(x: f32) -> f32 {
        Self::from_f32(x).to_f32()
    }

    pub fn is_nan(self) -> bool {
        (self.0 & 0x7f80) == 0x7f80 && (self.0 & 0x007f) != 0
    }

    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7fff) == 0x7f80
    }
}

impl From<f32> for Bf16 {
    fn from(x: f32) -> Self {
        Bf16::from_f32(x)
    }
}

impl From<Bf16> for f32 {
    fn from(x: Bf16) -> Self {
        x.to_f32()
    }
}

/// Quantize a whole slice to the bf16 grid in place.
pub fn round_slice(xs: &mut [f32]) {
    for x in xs {
        *x = Bf16::round_f32(*x);
    }
}

/// Relative error bound of a single f32 -> bf16 -> f32 round trip for
/// normal numbers: half a ULP of a 7-bit mantissa.
pub const BF16_RELATIVE_ERROR: f32 = 1.0 / 256.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers() {
        for i in -256..=256 {
            let x = i as f32;
            assert_eq!(Bf16::round_f32(x), x, "{i} should be exact in bf16");
        }
    }

    #[test]
    fn one_and_zero() {
        assert_eq!(Bf16::from_f32(1.0), Bf16::ONE);
        assert_eq!(Bf16::from_f32(0.0), Bf16::ZERO);
        assert_eq!(Bf16::ONE.to_f32(), 1.0);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0 + 2^-8 is exactly halfway between 1.0 and the next bf16
        // (1.0 + 2^-7); ties go to even mantissa, i.e. down to 1.0.
        let halfway = 1.0 + 2f32.powi(-8);
        assert_eq!(Bf16::round_f32(halfway), 1.0);
        // Just above the halfway point rounds up.
        let above = 1.0 + 2f32.powi(-8) + 2f32.powi(-16);
        assert_eq!(Bf16::round_f32(above), 1.0 + 2f32.powi(-7));
    }

    #[test]
    fn relative_error_bound() {
        let mut x = 1.0e-20f32;
        while x < 1.0e20 {
            let r = Bf16::round_f32(x);
            let rel = ((r - x) / x).abs();
            assert!(rel <= BF16_RELATIVE_ERROR, "x={x} r={r} rel={rel}");
            x *= 1.7;
        }
    }

    #[test]
    fn keeps_f32_range() {
        // The motivation for bf16 in the paper: same exponent range as f32.
        let big = 3.0e38f32;
        assert!(Bf16::round_f32(big).is_finite());
        let tiny = 1.0e-38f32;
        assert!(Bf16::round_f32(tiny) > 0.0);
    }

    #[test]
    fn nan_and_inf() {
        assert!(Bf16::from_f32(f32::NAN).is_nan());
        assert!(Bf16::from_f32(f32::INFINITY).is_infinite());
        assert!(Bf16::from_f32(f32::NEG_INFINITY).is_infinite());
        assert_eq!(Bf16::from_f32(f32::INFINITY).to_f32(), f32::INFINITY);
    }

    #[test]
    fn negative_symmetry() {
        for &x in &[0.1f32, 1.5, 123.456, 9.9e9] {
            assert_eq!(Bf16::round_f32(-x), -Bf16::round_f32(x));
        }
    }

    #[test]
    fn round_slice_matches_scalar() {
        let mut v: Vec<f32> = (0..100).map(|i| (i as f32) * 0.937 - 40.0).collect();
        let expect: Vec<f32> = v.iter().map(|&x| Bf16::round_f32(x)).collect();
        round_slice(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn idempotent() {
        for &x in &[0.3f32, -7.7, 1e12, -1e-12] {
            let once = Bf16::round_f32(x);
            assert_eq!(Bf16::round_f32(once), once);
        }
    }
}
