//! Property tests for the tensor kernels: blocked/packed/SIMD GEMM
//! *bitwise* agreement against the reference oracle across all modes
//! and kernel tiers, shard/assemble round trips, and bf16 error bounds,
//! over randomly drawn shapes.

use axonn_tensor::shard::assemble_blocks;
use axonn_tensor::{
    block_of, concat_cols, concat_rows, gemm, gemm_bf16, gemm_into_with, gemm_reference,
    shard_rows, unshard_rows, BlockSizes, BlockSpec, MatMode, Matrix, MR, NR,
};
use proptest::prelude::*;

fn dim() -> impl Strategy<Value = usize> {
    1usize..24
}

/// Shapes that straddle the register-tile and cache-block boundaries:
/// sub-tile, odd/prime, exact-multiple, and just-past-multiple sizes.
fn kernel_dim() -> impl Strategy<Value = usize> {
    const PRIMES: [usize; 10] = [5, 7, 11, 13, 17, 19, 23, 29, 31, 37];
    prop_oneof![
        1usize..=3, // sub-tile
        Just(MR),
        Just(MR + 1),
        Just(NR - 1),
        Just(NR),
        Just(NR + 1),
        (0usize..PRIMES.len()).prop_map(|i| PRIMES[i]),
        Just(2 * NR),
        Just(2 * NR + 3),
    ]
}

/// Random operands for a logical `m×k×n` product in `mode`.
fn operands(mode: MatMode, m: usize, k: usize, n: usize, seed: u64) -> (Matrix, Matrix) {
    match mode {
        MatMode::NN => (
            Matrix::random(m, k, 1.0, seed),
            Matrix::random(k, n, 1.0, seed + 1),
        ),
        MatMode::NT => (
            Matrix::random(m, k, 1.0, seed),
            Matrix::random(n, k, 1.0, seed + 1),
        ),
        MatMode::TN => (
            Matrix::random(k, m, 1.0, seed),
            Matrix::random(k, n, 1.0, seed + 1),
        ),
    }
}

fn mode() -> impl Strategy<Value = MatMode> {
    prop_oneof![Just(MatMode::NN), Just(MatMode::NT), Just(MatMode::TN)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gemm_nn_matches_reference(m in dim(), k in dim(), n in dim(), seed in 0u64..1000) {
        let a = Matrix::random(m, k, 1.0, seed);
        let b = Matrix::random(k, n, 1.0, seed + 1);
        // Bitwise: every C[i][j] is the same fixed-order mul-then-add
        // chain in the blocked kernels as in the reference oracle.
        prop_assert_eq!(gemm(MatMode::NN, &a, &b), gemm_reference(MatMode::NN, &a, &b));
    }

    #[test]
    fn gemm_nt_matches_reference(m in dim(), k in dim(), n in dim(), seed in 0u64..1000) {
        let a = Matrix::random(m, k, 1.0, seed);
        let b = Matrix::random(n, k, 1.0, seed + 1);
        prop_assert_eq!(gemm(MatMode::NT, &a, &b), gemm_reference(MatMode::NT, &a, &b));
    }

    #[test]
    fn gemm_tn_matches_reference(m in dim(), k in dim(), n in dim(), seed in 0u64..1000) {
        let a = Matrix::random(k, m, 1.0, seed);
        let b = Matrix::random(k, n, 1.0, seed + 1);
        prop_assert_eq!(gemm(MatMode::TN, &a, &b), gemm_reference(MatMode::TN, &a, &b));
    }

    #[test]
    fn blocked_kernel_bitwise_across_tile_boundaries(
        mode in mode(), m in kernel_dim(), k in kernel_dim(), n in kernel_dim(), seed in 0u64..1000
    ) {
        // Shapes chosen to straddle MR/NR register tiles; both the
        // scalar and the auto (SIMD when available) kernel must equal
        // the oracle bit for bit.
        let (a, b) = operands(mode, m, k, n, seed);
        let oracle = gemm_reference(mode, &a, &b);
        let mut c = Matrix::zeros(m, n);
        let _ = gemm_into_with(mode, &a, &b, &mut c, BlockSizes::default(), true);
        prop_assert_eq!(&c, &oracle, "scalar tier, mode {}", mode);
        let _ = gemm_into_with(mode, &a, &b, &mut c, BlockSizes::default(), false);
        prop_assert_eq!(&c, &oracle, "auto tier, mode {}", mode);
    }

    #[test]
    fn tiny_cache_blocks_bitwise(
        mode in mode(),
        m in 1usize..20, k in 1usize..20, n in 1usize..20,
        mc in 1usize..8, kc in 1usize..8, nc in 1usize..40,
        seed in 0u64..1000
    ) {
        // Arbitrary (normalized) cache-block sizes cross every block
        // boundary; partial k-sums round-trip through C exactly.
        let (a, b) = operands(mode, m, k, n, seed);
        let mut c = Matrix::zeros(m, n);
        let _ = gemm_into_with(mode, &a, &b, &mut c, BlockSizes { mc, kc, nc }, false);
        prop_assert_eq!(c, gemm_reference(mode, &a, &b));
    }

    #[test]
    fn zero_rows_skip_path_bitwise(
        m in 1usize..24, k in 1usize..24, n in 1usize..24,
        zero_every in 1usize..4, seed in 0u64..1000
    ) {
        // The NN pre-pack row-density check must be bitwise neutral:
        // skipped (±0) contributions equal added ones for finite B.
        let mut a = Matrix::random(m, k, 1.0, seed);
        for i in (0..m).step_by(zero_every) {
            for p in 0..k {
                a[(i, p)] = 0.0;
            }
        }
        let b = Matrix::random(k, n, 1.0, seed + 1);
        prop_assert_eq!(gemm(MatMode::NN, &a, &b), gemm_reference(MatMode::NN, &a, &b));
    }

    #[test]
    fn bf16_fused_pack_matches_quantize_then_gemm(
        mode in mode(), m in dim(), k in dim(), n in dim(), seed in 0u64..1000
    ) {
        // Quantization fused into packing must be indistinguishable from
        // materializing bf16 copies first (the old two-copy path).
        let (a, b) = operands(mode, m, k, n, seed);
        let fused = gemm_bf16(mode, &a, &b);
        let staged = gemm_reference(mode, &a.to_bf16(), &b.to_bf16());
        prop_assert_eq!(fused, staged);
    }

    #[test]
    fn zero_sized_edges_all_modes(mode in mode(), m in 0usize..3, k in 0usize..3, n in 0usize..3, seed in 0u64..1000) {
        let (a, b) = operands(mode, m, k, n, seed);
        let out = gemm(mode, &a, &b);
        prop_assert_eq!(out.shape(), (m, n));
        prop_assert_eq!(out, gemm_reference(mode, &a, &b));
    }

    #[test]
    fn transpose_is_involution(r in dim(), c in dim(), seed in 0u64..1000) {
        let m = Matrix::random(r, c, 1.0, seed);
        prop_assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn gemm_transpose_identity(m in dim(), k in dim(), n in dim(), seed in 0u64..1000) {
        // (A·B)ᵀ == Bᵀ·Aᵀ expressed through modes.
        let a = Matrix::random(m, k, 1.0, seed);
        let b = Matrix::random(k, n, 1.0, seed + 1);
        let ab_t = gemm(MatMode::NN, &a, &b).transposed();
        let bt_at = gemm(MatMode::NN, &b.transposed(), &a.transposed());
        prop_assert!(ab_t.approx_eq(&bt_at, 1e-4));
    }

    #[test]
    fn block_partition_reassembles(
        pr in 1usize..5, pc in 1usize..5, br in 1usize..6, bc in 1usize..6, seed in 0u64..1000
    ) {
        let m = Matrix::random(pr * br, pc * bc, 1.0, seed);
        let blocks: Vec<Matrix> = (0..pr)
            .flat_map(|i| (0..pc).map(move |j| (i, j)))
            .map(|(i, j)| block_of(&m, BlockSpec::new(pr, pc, i, j)))
            .collect();
        prop_assert_eq!(assemble_blocks(&blocks, pr, pc), m);
    }

    #[test]
    fn row_shard_round_trip(parts in 1usize..8, rows_per in 1usize..6, cols in 1usize..8, seed in 0u64..1000) {
        let m = Matrix::random(parts * rows_per, cols, 1.0, seed);
        let shards: Vec<Matrix> = (0..parts).map(|i| shard_rows(&m, parts, i)).collect();
        prop_assert_eq!(unshard_rows(&shards), m);
    }

    #[test]
    fn concat_shapes(r in 1usize..6, c1 in 1usize..6, c2 in 1usize..6, seed in 0u64..1000) {
        let a = Matrix::random(r, c1, 1.0, seed);
        let b = Matrix::random(r, c2, 1.0, seed + 1);
        let cc = concat_cols(&[a.clone(), b.clone()]);
        prop_assert_eq!(cc.shape(), (r, c1 + c2));
        let rr = concat_rows(&[a.transposed(), b.transposed()]);
        prop_assert_eq!(rr.shape(), (c1 + c2, r));
    }

    #[test]
    fn bf16_round_trip_error_bound(x in -1.0e30f32..1.0e30) {
        let r = axonn_tensor::Bf16::round_f32(x);
        if x != 0.0 && x.is_normal() {
            prop_assert!(((r - x) / x).abs() <= 1.0 / 256.0, "x={x} r={r}");
        }
        // Idempotence.
        prop_assert_eq!(axonn_tensor::Bf16::round_f32(r), r);
    }

    #[test]
    fn bf16_gemm_error_scales_with_k(m in 1usize..8, k in 1usize..16, n in 1usize..8, seed in 0u64..1000) {
        let a = Matrix::random(m, k, 1.0, seed);
        let b = Matrix::random(k, n, 1.0, seed + 1);
        let exact = gemm(MatMode::NN, &a, &b);
        let mixed = gemm_bf16(MatMode::NN, &a, &b);
        // |error| <= k * (2*eps + eps^2) for unit-bounded operands.
        let bound = k as f32 * 3.0 * (1.0 / 256.0) + 1e-5;
        prop_assert!(exact.max_abs_diff(&mixed) <= bound);
    }
}
