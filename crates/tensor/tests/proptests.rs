//! Property tests for the tensor kernels: GEMM-mode agreement against
//! the naive reference, shard/assemble round trips, and bf16 error
//! bounds, over randomly drawn shapes.

use axonn_tensor::shard::assemble_blocks;
use axonn_tensor::{
    block_of, concat_cols, concat_rows, gemm, gemm_bf16, gemm_reference, shard_rows, unshard_rows,
    BlockSpec, MatMode, Matrix,
};
use proptest::prelude::*;

fn dim() -> impl Strategy<Value = usize> {
    1usize..24
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gemm_nn_matches_reference(m in dim(), k in dim(), n in dim(), seed in 0u64..1000) {
        let a = Matrix::random(m, k, 1.0, seed);
        let b = Matrix::random(k, n, 1.0, seed + 1);
        let fast = gemm(MatMode::NN, &a, &b);
        let slow = gemm_reference(MatMode::NN, &a, &b);
        prop_assert!(fast.approx_eq(&slow, 1e-4));
    }

    #[test]
    fn gemm_nt_matches_reference(m in dim(), k in dim(), n in dim(), seed in 0u64..1000) {
        let a = Matrix::random(m, k, 1.0, seed);
        let b = Matrix::random(n, k, 1.0, seed + 1);
        let fast = gemm(MatMode::NT, &a, &b);
        let slow = gemm_reference(MatMode::NT, &a, &b);
        prop_assert!(fast.approx_eq(&slow, 1e-4));
    }

    #[test]
    fn gemm_tn_matches_reference(m in dim(), k in dim(), n in dim(), seed in 0u64..1000) {
        let a = Matrix::random(k, m, 1.0, seed);
        let b = Matrix::random(k, n, 1.0, seed + 1);
        let fast = gemm(MatMode::TN, &a, &b);
        let slow = gemm_reference(MatMode::TN, &a, &b);
        prop_assert!(fast.approx_eq(&slow, 1e-4));
    }

    #[test]
    fn transpose_is_involution(r in dim(), c in dim(), seed in 0u64..1000) {
        let m = Matrix::random(r, c, 1.0, seed);
        prop_assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn gemm_transpose_identity(m in dim(), k in dim(), n in dim(), seed in 0u64..1000) {
        // (A·B)ᵀ == Bᵀ·Aᵀ expressed through modes.
        let a = Matrix::random(m, k, 1.0, seed);
        let b = Matrix::random(k, n, 1.0, seed + 1);
        let ab_t = gemm(MatMode::NN, &a, &b).transposed();
        let bt_at = gemm(MatMode::NN, &b.transposed(), &a.transposed());
        prop_assert!(ab_t.approx_eq(&bt_at, 1e-4));
    }

    #[test]
    fn block_partition_reassembles(
        pr in 1usize..5, pc in 1usize..5, br in 1usize..6, bc in 1usize..6, seed in 0u64..1000
    ) {
        let m = Matrix::random(pr * br, pc * bc, 1.0, seed);
        let blocks: Vec<Matrix> = (0..pr)
            .flat_map(|i| (0..pc).map(move |j| (i, j)))
            .map(|(i, j)| block_of(&m, BlockSpec::new(pr, pc, i, j)))
            .collect();
        prop_assert_eq!(assemble_blocks(&blocks, pr, pc), m);
    }

    #[test]
    fn row_shard_round_trip(parts in 1usize..8, rows_per in 1usize..6, cols in 1usize..8, seed in 0u64..1000) {
        let m = Matrix::random(parts * rows_per, cols, 1.0, seed);
        let shards: Vec<Matrix> = (0..parts).map(|i| shard_rows(&m, parts, i)).collect();
        prop_assert_eq!(unshard_rows(&shards), m);
    }

    #[test]
    fn concat_shapes(r in 1usize..6, c1 in 1usize..6, c2 in 1usize..6, seed in 0u64..1000) {
        let a = Matrix::random(r, c1, 1.0, seed);
        let b = Matrix::random(r, c2, 1.0, seed + 1);
        let cc = concat_cols(&[a.clone(), b.clone()]);
        prop_assert_eq!(cc.shape(), (r, c1 + c2));
        let rr = concat_rows(&[a.transposed(), b.transposed()]);
        prop_assert_eq!(rr.shape(), (c1 + c2, r));
    }

    #[test]
    fn bf16_round_trip_error_bound(x in -1.0e30f32..1.0e30) {
        let r = axonn_tensor::Bf16::round_f32(x);
        if x != 0.0 && x.is_normal() {
            prop_assert!(((r - x) / x).abs() <= 1.0 / 256.0, "x={x} r={r}");
        }
        // Idempotence.
        prop_assert_eq!(axonn_tensor::Bf16::round_f32(r), r);
    }

    #[test]
    fn bf16_gemm_error_scales_with_k(m in 1usize..8, k in 1usize..16, n in 1usize..8, seed in 0u64..1000) {
        let a = Matrix::random(m, k, 1.0, seed);
        let b = Matrix::random(k, n, 1.0, seed + 1);
        let exact = gemm(MatMode::NN, &a, &b);
        let mixed = gemm_bf16(MatMode::NN, &a, &b);
        // |error| <= k * (2*eps + eps^2) for unit-bounded operands.
        let bound = k as f32 * 3.0 * (1.0 / 256.0) + 1e-5;
        prop_assert!(exact.max_abs_diff(&mixed) <= bound);
    }
}
