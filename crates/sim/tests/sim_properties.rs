//! Cross-plane invariants: the simulator against the analytic model, and
//! structural properties of simulated batches over random configurations.

use axonn_cluster::{BandwidthDb, Machine};
use axonn_gpt::model_by_billions;
use axonn_perfmodel::{network_comm_time, Grid4d};
use axonn_sim::{simulate_batch, Fidelity, SimOptions};
use proptest::prelude::*;

fn setup() -> (Machine, BandwidthDb) {
    let m = Machine::frontier();
    let db = BandwidthDb::profile(&m);
    (m, db)
}

#[test]
fn ideal_simulator_agrees_with_analytic_model_on_z_only_grids() {
    // On a (1,1,Z,D) grid there are no forward/backward all-reduces, so
    // the only collectives are exactly the Eq. 1/2/5 terms the model
    // counts once per layer. With zero latency, no noise and no overlap,
    // the simulator's issued communication must equal the model's
    // prediction.
    let (machine, db) = setup();
    let model = model_by_billions(5);
    let batch = 1 << 20;
    for grid in [Grid4d::new(1, 1, 16, 4), Grid4d::new(1, 1, 64, 2)] {
        let predicted = network_comm_time(&machine, &db, grid, &model, batch);
        let opts = SimOptions::baseline().with_fidelity(Fidelity::ideal());
        let b = simulate_batch(&machine, &db, grid, &model, batch, opts);
        let rel = (b.issued_comm_seconds - predicted).abs() / predicted;
        assert!(
            rel < 1e-9,
            "{grid}: sim {} vs model {predicted}",
            b.issued_comm_seconds
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn breakdown_accounting_identity(gi in 0usize..120, batch_exp in 18usize..23) {
        let (machine, db) = setup();
        let grids = Grid4d::enumerate(128);
        let grid = grids[gi % grids.len()];
        let model = model_by_billions(5);
        let b = simulate_batch(&machine, &db, grid, &model, 1 << batch_exp, SimOptions::full());
        prop_assert!(b.total_seconds > 0.0);
        prop_assert!(
            (b.total_seconds - b.compute_seconds - b.exposed_comm_seconds).abs()
                < 1e-9 * b.total_seconds
        );
        prop_assert!(b.exposed_comm_seconds >= -1e-12);
        prop_assert!(b.issued_comm_seconds + 1e-12 >= b.exposed_comm_seconds);
    }

    #[test]
    fn overlap_never_slows_a_batch(gi in 0usize..120) {
        let (machine, db) = setup();
        let grids = Grid4d::enumerate(128);
        let grid = grids[gi % grids.len()];
        let model = model_by_billions(5);
        let batch = 1 << 20;
        let base = simulate_batch(&machine, &db, grid, &model, batch, SimOptions::baseline());
        let full = {
            let mut o = SimOptions::full();
            o.kernel_tuning = false; // isolate overlap
            simulate_batch(&machine, &db, grid, &model, batch, o)
        };
        prop_assert!(full.total_seconds <= base.total_seconds * (1.0 + 1e-9));
        // Overlap hides communication; it never changes how much compute
        // runs.
        prop_assert!((full.compute_seconds - base.compute_seconds).abs() < 1e-9 * base.compute_seconds);
    }

    #[test]
    fn kernel_tuning_never_slows_compute(gi in 0usize..120) {
        let (machine, db) = setup();
        let grids = Grid4d::enumerate(128);
        let grid = grids[gi % grids.len()];
        let model = model_by_billions(20); // large hidden: tuning matters
        let batch = 1 << 20;
        let mut untuned = SimOptions::baseline();
        untuned.kernel_tuning = false;
        let mut tuned = untuned;
        tuned.kernel_tuning = true;
        let a = simulate_batch(&machine, &db, grid, &model, batch, untuned);
        let b = simulate_batch(&machine, &db, grid, &model, batch, tuned);
        prop_assert!(b.compute_seconds <= a.compute_seconds * (1.0 + 1e-9));
    }

    #[test]
    fn noise_only_increases_time(gi in 0usize..56, seed in 1u64..100) {
        let (machine, db) = setup();
        let grids = Grid4d::enumerate(32);
        let grid = grids[gi % grids.len()];
        let model = model_by_billions(5);
        let batch = 1 << 19;
        let clean = simulate_batch(&machine, &db, grid, &model, batch,
            SimOptions::full().with_fidelity(Fidelity::ideal()));
        let noisy = simulate_batch(&machine, &db, grid, &model, batch,
            SimOptions::full().with_fidelity(Fidelity::observed(seed)));
        prop_assert!(noisy.total_seconds >= clean.total_seconds);
    }
}
