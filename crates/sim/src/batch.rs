//! The per-batch timeline simulator.
//!
//! One representative GPU is simulated with a *compute stream* and three
//! *communication channels* (all-gather, all-reduce, reduce-scatter —
//! NCCL communicators get independent streams in AxoNN). The schedule is
//! exactly Algorithm 1 with activation checkpointing:
//!
//! * forward, per FC layer: all-gather of the Z-sharded weights (line 2;
//!   prefetched under OAG), local GEMM (line 3), blocking all-reduce of
//!   the partial outputs (line 4);
//! * backward, per FC layer in reverse: recompute of the forward GEMM and
//!   its all-reduce (activation checkpointing), the input-gradient GEMM
//!   (line 11), its all-reduce (line 12; overlapped with the next GEMM
//!   under OAR), the weight-gradient GEMM (line 13; TN mode, rerouted
//!   through transpose+NN by the kernel tuner), and the reduce-scatter of
//!   weight gradients (line 14; deferred to the end of backward under
//!   ORS);
//! * one bucketed data-parallel gradient all-reduce at the end.

use crate::options::SimOptions;
use axonn_cluster::{effective_bandwidth, BandwidthDb, GemmMode, Machine};
use axonn_gpt::GptConfig;
use axonn_perfmodel::Grid4d;
use axonn_trace::{CollOp, EventDetail, Stream, TraceSink};
use serde::Serialize;

/// Simulated timing of one training iteration.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct BatchBreakdown {
    /// Makespan of the iteration (what the paper plots as time per batch).
    pub total_seconds: f64,
    /// Time the compute stream spent computing.
    pub compute_seconds: f64,
    /// Makespan minus compute: communication not hidden behind compute
    /// (the orange bars of Figs. 5 and 7).
    pub exposed_comm_seconds: f64,
    /// Total duration of all collectives, whether hidden or not.
    pub issued_comm_seconds: f64,
}

/// Deterministic jitter stream (splitmix64): the "congestion" of the
/// observed simulator. Every communication op draws one factor ≥ 1.
struct Jitter {
    state: u64,
    noise: f64,
}

impl Jitter {
    fn new(seed: u64, noise: f64) -> Jitter {
        Jitter {
            state: seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1),
            noise,
        }
    }

    fn next_unit(&mut self) -> f64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Slowdown factor in `[1, 1 + 2·noise]`.
    fn comm_factor(&mut self) -> f64 {
        1.0 + 2.0 * self.noise * self.next_unit()
    }

    /// Milder compute variability in `[1, 1 + 0.5·noise]`.
    fn compute_factor(&mut self) -> f64 {
        1.0 + 0.5 * self.noise * self.next_unit()
    }
}

/// Communication channels of the representative GPU.
const CHAN_AG: usize = 0;
const CHAN_AR: usize = 1;
const CHAN_RS: usize = 2;

/// Trace stream a channel's spans land on.
fn chan_stream(chan: usize) -> Stream {
    match chan {
        CHAN_AG => Stream::CommAg,
        CHAN_AR => Stream::CommAr,
        _ => Stream::CommRs,
    }
}

fn coll_op(kind: Coll) -> CollOp {
    match kind {
        Coll::AllGather => CollOp::AllGather,
        Coll::ReduceScatter => CollOp::ReduceScatter,
        Coll::AllReduce => CollOp::AllReduce,
    }
}

fn gemm_label(mode: GemmMode) -> &'static str {
    match mode {
        GemmMode::NN => "NN",
        GemmMode::NT => "NT",
        GemmMode::TN => "TN",
    }
}

/// A simulated asynchronous collective awaiting its wait point.
struct AsyncTicket {
    done: f64,
    op: CollOp,
    seq: u64,
    /// False for size-1 groups, which move no data and leave no events.
    real: bool,
}

struct Timeline<'a> {
    machine: &'a Machine,
    db: &'a BandwidthDb,
    grid: Grid4d,
    opts: SimOptions,
    jitter: Jitter,
    /// Compute stream clock.
    t_comp: f64,
    /// Per-channel communication clocks.
    chan: [f64; 3],
    compute_sum: f64,
    comm_sum: f64,
    /// Event sink when the batch is traced (one representative rank).
    sink: Option<&'a TraceSink>,
    next_seq: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Coll {
    AllGather,
    ReduceScatter,
    AllReduce,
}

impl<'a> Timeline<'a> {
    /// Duration of a ring collective over the level-`level` groups moving
    /// `bytes` (full-buffer convention, matching Eqs. 1–5).
    fn coll_duration(&mut self, level: usize, kind: Coll, bytes: f64) -> f64 {
        let size = self.grid.dims()[level];
        if size <= 1 {
            return 0.0;
        }
        let prefix = self.grid.prefix(level);
        let beta = effective_bandwidth(self.machine, self.db, prefix, size);
        let g = size as f64;
        let (steps, volume) = match kind {
            Coll::AllGather | Coll::ReduceScatter => (g - 1.0, (g - 1.0) / g * bytes),
            Coll::AllReduce => (2.0 * (g - 1.0), 2.0 * (g - 1.0) / g * bytes),
        };
        let alpha = if prefix * size <= self.machine.gpus_per_node {
            self.opts.fidelity.alpha_intra
        } else {
            self.opts.fidelity.alpha_inter
        };
        (steps * alpha + volume / beta) * self.jitter.comm_factor()
    }

    fn bump_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Blocking collective: compute stream waits for the channel and the
    /// operation.
    fn blocking_coll(&mut self, chan: usize, level: usize, kind: Coll, bytes: f64) {
        let size = self.grid.dims()[level];
        let entry = self.t_comp;
        let dur = self.coll_duration(level, kind, bytes);
        self.comm_sum += dur;
        let start = self.t_comp.max(self.chan[chan]);
        let done = start + dur;
        self.chan[chan] = done;
        self.t_comp = done;
        if size > 1 {
            if let Some(sink) = self.sink {
                let seq = self.next_seq;
                self.next_seq += 1;
                sink.record_scoped(
                    Stream::Compute,
                    entry,
                    done,
                    EventDetail::Collective {
                        op: coll_op(kind),
                        group_size: size,
                        bytes: bytes as u64,
                        seq,
                        blocking: true,
                        op_seconds: dur,
                    },
                );
            }
        }
    }

    /// Asynchronous collective issued at `issue` (compute-stream time);
    /// returns a ticket carrying its completion time.
    fn async_coll(
        &mut self,
        chan: usize,
        level: usize,
        kind: Coll,
        bytes: f64,
        issue: f64,
    ) -> AsyncTicket {
        let size = self.grid.dims()[level];
        let dur = self.coll_duration(level, kind, bytes);
        self.comm_sum += dur;
        let start = issue.max(self.chan[chan]);
        let done = start + dur;
        self.chan[chan] = done;
        let op = coll_op(kind);
        let seq = self.bump_seq();
        let real = size > 1;
        if real {
            if let Some(sink) = self.sink {
                sink.mark(
                    Stream::Compute,
                    issue,
                    EventDetail::Issue {
                        op,
                        group_size: size,
                        bytes: bytes as u64,
                        seq,
                    },
                );
                sink.record_scoped(
                    chan_stream(chan),
                    start,
                    done,
                    EventDetail::Collective {
                        op,
                        group_size: size,
                        bytes: bytes as u64,
                        seq,
                        blocking: false,
                        op_seconds: dur,
                    },
                );
            }
        }
        AsyncTicket {
            done,
            op,
            seq,
            real,
        }
    }

    /// Wait point of an asynchronous collective: the compute stream
    /// stalls until the ticket's completion (a zero-length gap when the
    /// operation finished earlier — fully hidden).
    fn wait_async(&mut self, ticket: &AsyncTicket) {
        let gap_start = self.t_comp;
        self.t_comp = self.t_comp.max(ticket.done);
        if ticket.real {
            if let Some(sink) = self.sink {
                sink.record_scoped(
                    Stream::Compute,
                    gap_start,
                    self.t_comp,
                    EventDetail::OverlapWait {
                        op: ticket.op,
                        seq: ticket.seq,
                    },
                );
            }
        }
    }

    /// Local GEMM on the compute stream. `global_ref` is the unsharded
    /// reference dimension the BLAS library keys its kernel choice on
    /// (the Section V-C pathology is a property of the layer, not of the
    /// shard).
    fn gemm(&mut self, m: f64, k: f64, n: f64, mode: GemmMode, global_ref: usize) {
        let dur = self.gemm_duration(m, k, n, mode, global_ref) * self.jitter.compute_factor();
        let t0 = self.t_comp;
        self.compute_sum += dur;
        self.t_comp += dur;
        if let Some(sink) = self.sink {
            sink.record_scoped(
                Stream::Compute,
                t0,
                self.t_comp,
                EventDetail::Gemm {
                    mode: gemm_label(mode),
                    flops: 2.0 * m * k * n,
                    // GPU BLAS packs inside the library; the machine
                    // timeline does not model host pack traffic.
                    packed_bytes: 0,
                    panels: 0,
                },
            );
        }
    }

    fn gemm_duration(&self, m: f64, k: f64, n: f64, mode: GemmMode, global_ref: usize) -> f64 {
        let flops = 2.0 * m * k * n;
        let min_dim = m.min(k).min(n);
        if min_dim < 1.0 {
            return 0.0;
        }
        let saturation = min_dim / (min_dim + self.machine.gemm_half_sat);
        let best = self.machine.empirical_peak_tflops / self.machine.advertised_peak_tflops
            * self.machine.sw_derate;
        let eff = best * saturation * self.machine.kernel.factor(mode, global_ref);
        flops / (self.machine.advertised_peak() * eff)
    }

    /// The weight-gradient GEMM: TN by default; with kernel tuning the
    /// simulator does what the first-batch tuner does — time the direct
    /// mode against transpose-copy + NN and take the faster.
    fn dw_gemm(&mut self, m: f64, k: f64, n: f64, global_ref: usize) {
        let direct = self.gemm_duration(k, m, n, GemmMode::TN, global_ref);
        let mut mode = "TN";
        let mut rerouted = f64::NAN;
        let dur = if self.opts.kernel_tuning {
            // Transpose I (m×k bf16): one read + one write of the buffer.
            let transpose = 2.0 * (m * k * 2.0) / self.machine.hbm_bw;
            rerouted = transpose + self.gemm_duration(k, m, n, GemmMode::NN, global_ref);
            if rerouted < direct {
                mode = "TN->NN";
            }
            direct.min(rerouted)
        } else {
            direct
        } * self.jitter.compute_factor();
        let t0 = self.t_comp;
        self.compute_sum += dur;
        self.t_comp += dur;
        if let Some(sink) = self.sink {
            sink.record_scoped(
                Stream::Compute,
                t0,
                self.t_comp,
                EventDetail::Gemm {
                    mode,
                    flops: 2.0 * m * k * n,
                    packed_bytes: 0,
                    panels: 0,
                },
            );
            if self.opts.kernel_tuning {
                sink.mark(
                    Stream::Compute,
                    self.t_comp,
                    EventDetail::TunerDecision {
                        layer: sink.layer().unwrap_or(0),
                        // On the GPU machine the library's TN kernel *is*
                        // the pathological one, so it fills both the
                        // direct and naive slots of the decision record.
                        choice: if mode == "TN->NN" {
                            "transpose_nn"
                        } else {
                            "direct_tn"
                        },
                        direct_seconds: direct,
                        naive_seconds: direct,
                        reroute_seconds: rerouted,
                    },
                );
            }
        }
    }

    /// Extra non-GEMM compute (attention scores, softmax, vocab)
    /// accounted from Narayanan's formula, charged at a reduced
    /// efficiency.
    fn aux_compute(&mut self, flops: f64) {
        let best = self.machine.empirical_peak_tflops / self.machine.advertised_peak_tflops
            * self.machine.sw_derate;
        let rate = self.machine.advertised_peak() * best * 0.75;
        let dur = flops / rate * self.jitter.compute_factor();
        let t0 = self.t_comp;
        self.compute_sum += dur;
        self.t_comp += dur;
        if let Some(sink) = self.sink {
            sink.record_scoped(
                Stream::Compute,
                t0,
                self.t_comp,
                EventDetail::Aux { label: "aux" },
            );
        }
    }
}

/// Per-layer roles: which grid level divides the weight rows (`k`) and
/// columns (`n`). Transposed layers swap X and Y (Section V-A).
fn layer_levels(transposed: bool) -> (usize, usize) {
    if transposed {
        (0, 1) // k divided over X, n over Y
    } else {
        (1, 0) // k divided over Y, n over X
    }
}

/// Simulate one training iteration of `model` on `grid` with global batch
/// `batch_tokens`.
pub fn simulate_batch(
    machine: &Machine,
    db: &BandwidthDb,
    grid: Grid4d,
    model: &GptConfig,
    batch_tokens: usize,
    opts: SimOptions,
) -> BatchBreakdown {
    simulate_batch_with(machine, db, grid, model, batch_tokens, opts, None)
}

/// Simulate one training iteration while recording every compute and
/// communication span into `sink` (the timeline of one representative
/// rank; training is SPMD-symmetric). Finish the sink afterwards to get
/// the [`axonn_trace::RankTrace`].
pub fn simulate_batch_traced(
    machine: &Machine,
    db: &BandwidthDb,
    grid: Grid4d,
    model: &GptConfig,
    batch_tokens: usize,
    opts: SimOptions,
    sink: &TraceSink,
) -> BatchBreakdown {
    simulate_batch_with(machine, db, grid, model, batch_tokens, opts, Some(sink))
}

fn simulate_batch_with(
    machine: &Machine,
    db: &BandwidthDb,
    grid: Grid4d,
    model: &GptConfig,
    batch_tokens: usize,
    opts: SimOptions,
    sink: Option<&TraceSink>,
) -> BatchBreakdown {
    assert_eq!(
        batch_tokens % grid.gd,
        0,
        "batch must divide over data groups"
    );
    let layers = model.network_fc_layers();
    let m_rep = (batch_tokens / grid.gd) as f64;
    let gzf = grid.gz as f64;

    let mut tl = Timeline {
        machine,
        db,
        grid,
        opts,
        jitter: Jitter::new(opts.fidelity.seed, opts.fidelity.noise),
        t_comp: 0.0,
        chan: [0.0; 3],
        compute_sum: 0.0,
        comm_sum: 0.0,
        sink,
        next_seq: 0,
    };

    // Non-FC compute per GPU, spread over the per-layer charge points
    // (forward, recompute, dI, dW).
    let gpus = grid.gpus() as f64;
    let hw_total = model.hardware_flops_per_iter(batch_tokens) / gpus;
    let fc_total: f64 = layers
        .iter()
        .map(|l| {
            let (kl, nl) = layer_levels(l.transposed);
            let lk = l.shape.k as f64 / grid.dims()[kl] as f64;
            let ln = l.shape.n as f64 / grid.dims()[nl] as f64;
            4.0 * 2.0 * (m_rep / gzf) * lk * ln
        })
        .sum();
    let aux_per_point = ((hw_total - fc_total).max(0.0)) / (4.0 * layers.len() as f64);

    // ---- Forward pass ----
    let mut ag_prefetched: Vec<AsyncTicket> = Vec::with_capacity(layers.len());
    if opts.overlap_ag {
        // OAG: the topological order is known at batch start; all-gathers
        // pipeline on their channel ahead of the compute wave.
        for (i, l) in layers.iter().enumerate() {
            let (kl, nl) = layer_levels(l.transposed);
            let lk = l.shape.k as f64 / grid.dims()[kl] as f64;
            let ln = l.shape.n as f64 / grid.dims()[nl] as f64;
            if let Some(s) = tl.sink {
                s.set_layer(Some(i));
            }
            let ticket = tl.async_coll(CHAN_AG, 2, Coll::AllGather, lk * ln * 2.0, 0.0);
            if let Some(s) = tl.sink {
                s.set_layer(None);
            }
            ag_prefetched.push(ticket);
        }
    }
    for (i, l) in layers.iter().enumerate() {
        let (kl, nl) = layer_levels(l.transposed);
        let lk = l.shape.k as f64 / grid.dims()[kl] as f64;
        let ln = l.shape.n as f64 / grid.dims()[nl] as f64;
        let lm = m_rep / gzf;
        let span = tl.sink.and_then(|s| {
            s.set_layer(Some(i));
            s.open_span(
                Stream::Compute,
                tl.t_comp,
                EventDetail::LayerFwd { layer: i },
            )
        });
        // Weight all-gather (Eq. 1).
        if opts.overlap_ag {
            tl.wait_async(&ag_prefetched[i]);
        } else {
            tl.blocking_coll(CHAN_AG, 2, Coll::AllGather, lk * ln * 2.0);
        }
        // Forward GEMM + auxiliary work.
        tl.gemm(lm, lk, ln, GemmMode::NN, l.shape.k.min(l.shape.n));
        tl.aux_compute(aux_per_point);
        // Output all-reduce over the k-dividing groups (Eq. 3).
        tl.blocking_coll(CHAN_AR, kl, Coll::AllReduce, lm * ln * 2.0);
        if let Some(s) = tl.sink {
            s.close_span(span, tl.t_comp);
            s.set_layer(None);
        }
    }

    // ---- Backward pass (reverse order, with activation checkpointing) ----
    let mut pending_rs: Vec<AsyncTicket> = Vec::new();
    for (i, l) in layers.iter().enumerate().rev() {
        let (kl, nl) = layer_levels(l.transposed);
        let lk = l.shape.k as f64 / grid.dims()[kl] as f64;
        let ln = l.shape.n as f64 / grid.dims()[nl] as f64;
        let lm = m_rep / gzf;
        let gref = l.shape.k.min(l.shape.n);
        let span = tl.sink.and_then(|s| {
            s.set_layer(Some(i));
            s.open_span(
                Stream::Compute,
                tl.t_comp,
                EventDetail::LayerBwd { layer: i },
            )
        });

        // Recompute the forward (checkpointing): GEMM + output all-reduce.
        tl.gemm(lm, lk, ln, GemmMode::NN, gref);
        tl.aux_compute(aux_per_point);
        tl.blocking_coll(CHAN_AR, kl, Coll::AllReduce, lm * ln * 2.0);

        // Input-gradient GEMM (line 11) and its all-reduce (line 12,
        // over the n-dividing groups — Eq. 4).
        tl.gemm(lm, ln, lk, GemmMode::NT, gref);
        tl.aux_compute(aux_per_point);
        let ar_bytes = lm * lk * 2.0;
        let ar_ticket = if opts.overlap_ar {
            let issue = tl.t_comp;
            Some(tl.async_coll(CHAN_AR, nl, Coll::AllReduce, ar_bytes, issue))
        } else {
            tl.blocking_coll(CHAN_AR, nl, Coll::AllReduce, ar_bytes);
            None
        };

        // Weight-gradient GEMM (line 13; the TN product).
        tl.dw_gemm(lm, lk, ln, gref);
        tl.aux_compute(aux_per_point);
        if let Some(ticket) = ar_ticket {
            // OAR: wait for the overlapped all-reduce now.
            tl.wait_async(&ticket);
        }

        // Weight-gradient reduce-scatter over Z (line 14, Eq. 2).
        let rs_bytes = lk * ln * 2.0;
        if opts.overlap_rs {
            let issue = tl.t_comp;
            pending_rs.push(tl.async_coll(CHAN_RS, 2, Coll::ReduceScatter, rs_bytes, issue));
        } else {
            tl.blocking_coll(CHAN_RS, 2, Coll::ReduceScatter, rs_bytes);
        }
        if let Some(s) = tl.sink {
            s.close_span(span, tl.t_comp);
            s.set_layer(None);
        }
    }
    // ORS: the gradients are needed only before the data-parallel phase.
    for ticket in &pending_rs {
        tl.wait_async(ticket);
    }

    // ---- Data-parallel gradient all-reduce (Eq. 5), bucketed ----
    let grad_bytes: f64 = layers
        .iter()
        .map(|l| l.shape.weight_elems() as f64 * 2.0 / grid.tensor_parallel() as f64)
        .sum();
    tl.blocking_coll(CHAN_AR, 3, Coll::AllReduce, grad_bytes);

    let total = tl.t_comp;
    BatchBreakdown {
        total_seconds: total,
        compute_seconds: tl.compute_sum,
        exposed_comm_seconds: (total - tl.compute_sum).max(0.0),
        issued_comm_seconds: tl.comm_sum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axonn_gpt::model_by_billions;

    fn setup() -> (Machine, BandwidthDb) {
        let m = Machine::frontier();
        let db = BandwidthDb::profile(&m);
        (m, db)
    }

    #[test]
    fn breakdown_identity() {
        let (m, db) = setup();
        let model = model_by_billions(20);
        let grid = Grid4d::new(8, 2, 4, 8);
        let b = simulate_batch(&m, &db, grid, &model, 1 << 21, SimOptions::full());
        assert!(b.total_seconds > 0.0);
        assert!(
            (b.total_seconds - b.compute_seconds - b.exposed_comm_seconds).abs()
                < 1e-9 * b.total_seconds
        );
        assert!(b.issued_comm_seconds >= b.exposed_comm_seconds);
    }

    #[test]
    fn overlap_never_hurts_and_eventually_helps() {
        let (m, db) = setup();
        let model = model_by_billions(20);
        let grid = Grid4d::new(8, 2, 4, 8);
        let batch = 1 << 21;
        let base = simulate_batch(&m, &db, grid, &model, batch, SimOptions::baseline());
        let mut oar = SimOptions::baseline();
        oar.overlap_ar = true;
        let t_oar = simulate_batch(&m, &db, grid, &model, batch, oar);
        let mut ors = oar;
        ors.overlap_rs = true;
        let t_ors = simulate_batch(&m, &db, grid, &model, batch, ors);
        let mut oag = ors;
        oag.overlap_ag = true;
        let t_oag = simulate_batch(&m, &db, grid, &model, batch, oag);

        assert!(t_oar.total_seconds <= base.total_seconds * 1.0001);
        assert!(t_ors.total_seconds <= t_oar.total_seconds * 1.0001);
        assert!(t_oag.total_seconds <= t_ors.total_seconds * 1.0001);
        // Full overlap must give a real improvement on this comm-heavy
        // configuration.
        assert!(
            t_oag.total_seconds < 0.97 * base.total_seconds,
            "full overlap {:.4}s vs baseline {:.4}s",
            t_oag.total_seconds,
            base.total_seconds
        );
        // Overlap hides communication rather than removing it.
        assert!(t_oag.exposed_comm_seconds < base.exposed_comm_seconds);
        assert!(
            (t_oag.issued_comm_seconds - base.issued_comm_seconds).abs()
                < 0.01 * base.issued_comm_seconds
        );
    }

    #[test]
    fn kernel_tuning_helps_large_hidden_on_frontier() {
        let (m, db) = setup();
        let model = model_by_billions(320);
        let grid = Grid4d::new(8, 4, 8, 4); // 1024 GCDs
        let batch = 1 << 21;
        let mut untuned = SimOptions::baseline();
        untuned.overlap_ar = true;
        untuned.overlap_rs = true;
        untuned.overlap_ag = true;
        let mut tuned = untuned;
        tuned.kernel_tuning = true;
        let a = simulate_batch(&m, &db, grid, &model, batch, untuned);
        let b = simulate_batch(&m, &db, grid, &model, batch, tuned);
        // Section V-C: tuning cut total compute from 30.1 s to 13.19 s
        // (2.3x) for GPT-320B; our shape target is a large compute
        // reduction.
        assert!(
            b.compute_seconds < 0.6 * a.compute_seconds,
            "tuned {:.3}s vs untuned {:.3}s",
            b.compute_seconds,
            a.compute_seconds
        );
    }

    #[test]
    fn kernel_tuning_is_modest_for_small_hidden() {
        let (m, db) = setup();
        let model = model_by_billions(20);
        let grid = Grid4d::new(8, 2, 4, 8);
        let batch = 1 << 21;
        let a = simulate_batch(&m, &db, grid, &model, batch, SimOptions::baseline());
        let mut tuned = SimOptions::baseline();
        tuned.kernel_tuning = true;
        let b = simulate_batch(&m, &db, grid, &model, batch, tuned);
        let gain = 1.0 - b.total_seconds / a.total_seconds;
        assert!(
            (0.0..0.12).contains(&gain),
            "small-model tuning gain {gain:.3} should be modest"
        );
    }

    #[test]
    fn observed_mode_is_slower_and_seed_dependent() {
        let (m, db) = setup();
        let model = model_by_billions(10);
        let grid = Grid4d::new(8, 1, 2, 4);
        let batch = 1 << 20;
        let clean = simulate_batch(&m, &db, grid, &model, batch, SimOptions::full());
        let o1 = simulate_batch(
            &m,
            &db,
            grid,
            &model,
            batch,
            SimOptions::full().with_fidelity(crate::options::Fidelity::observed(1)),
        );
        let o2 = simulate_batch(
            &m,
            &db,
            grid,
            &model,
            batch,
            SimOptions::full().with_fidelity(crate::options::Fidelity::observed(2)),
        );
        assert!(o1.total_seconds > clean.total_seconds);
        assert_ne!(o1.total_seconds, o2.total_seconds);
        // Determinism per seed.
        let o1b = simulate_batch(
            &m,
            &db,
            grid,
            &model,
            batch,
            SimOptions::full().with_fidelity(crate::options::Fidelity::observed(1)),
        );
        assert_eq!(o1.total_seconds, o1b.total_seconds);
    }

    #[test]
    fn more_gpus_same_model_is_faster() {
        let (m, db) = setup();
        let model = model_by_billions(20);
        let batch = 1 << 22;
        let small = simulate_batch(
            &m,
            &db,
            Grid4d::new(8, 2, 4, 4),
            &model,
            batch,
            SimOptions::full(),
        );
        let large = simulate_batch(
            &m,
            &db,
            Grid4d::new(8, 2, 4, 16),
            &model,
            batch,
            SimOptions::full(),
        );
        assert!(large.total_seconds < small.total_seconds);
    }
}
