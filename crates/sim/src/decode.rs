//! Serving-plane mirror of `axonn_serve`'s tensor-parallel decode.
//!
//! `TpShard::decode_token` folds the per-rank attention and MLP partial
//! products with two blocking all-reduces per layer per token; this
//! module replays the same control flow against a [`CostModel`],
//! recording one representative rank's timeline through the shared
//! `axonn-trace` vocabulary. The root integration tests pin its
//! collective kind sequence against the dry-extracted schedule of
//! `axonn_serve::extract_tp_decode_schedule` — the serving-plane twin of
//! the training-step cross-plane agreement test — so the perf model and
//! the verifier certify the *same* decode communication pattern.

use crate::mlp::Mirror;
use axonn_collectives::{CollectiveKind, CostModel};
use axonn_trace::RankTrace;

/// The tensor-parallel decode configuration being mirrored.
#[derive(Debug, Clone)]
pub struct TpDecodeConfig {
    /// Tensor-parallel degree (the X group size).
    pub tp: usize,
    /// Transformer blocks.
    pub layers: usize,
    /// Model width; heads and the 4×-wide MLP shard by `tp`.
    pub dim: usize,
    /// Vocabulary size (the replicated LM-head GEMM).
    pub vocab: usize,
    /// Decode steps (one token each, KV-cached).
    pub tokens: usize,
}

/// Replay a `tp`-way greedy decode of `tokens` tokens against `cost`.
///
/// # Panics
/// If `dim` or `4 * dim` is not divisible by `tp` (the same sharding
/// contract `TpShard::new` enforces).
pub fn simulate_tp_decode(cfg: &TpDecodeConfig, cost: &dyn CostModel) -> RankTrace {
    assert!(
        cfg.tp >= 1 && cfg.layers >= 1 && cfg.tokens >= 1,
        "need positive tp, layers and tokens"
    );
    assert_eq!(cfg.dim % cfg.tp, 0, "dim must shard by tp");
    assert_eq!((4 * cfg.dim) % cfg.tp, 0, "MLP width must shard by tp");
    let mut m = Mirror::new(cost);
    let d = cfg.dim as f64;
    // This rank's share of the head columns and the MLP hidden width.
    let lsec = (cfg.dim / cfg.tp) as f64;
    let hidden_local = (4 * cfg.dim / cfg.tp) as f64;
    for _ in 0..cfg.tokens {
        for li in 0..cfg.layers {
            m.sink.set_layer(Some(li));
            m.gemm("NN", 1.0, d, 3.0 * lsec); // QKV, local heads only
            m.gemm("NN", 1.0, lsec, d); // output-projection rows
            m.blocking(CollectiveKind::AllReduce, cfg.tp, d * 4.0); // attn partials
            m.gemm("NN", 1.0, d, hidden_local); // fc1 columns
            m.gemm("NN", 1.0, hidden_local, d); // fc2 rows
            m.blocking(CollectiveKind::AllReduce, cfg.tp, d * 4.0); // MLP partials
            m.sink.set_layer(None);
        }
        m.gemm("NN", 1.0, d, cfg.vocab as f64); // replicated LM head
    }
    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use axonn_collectives::RingCostModel;
    use axonn_trace::{EventDetail, Stream};

    fn collective_count(trace: &RankTrace) -> usize {
        trace
            .stream_events(Stream::Compute)
            .filter(|e| matches!(e.detail, EventDetail::Collective { .. }))
            .count()
    }

    #[test]
    fn two_all_reduces_per_layer_per_token() {
        let cost = RingCostModel::new(1e8, 1e8);
        let trace = simulate_tp_decode(
            &TpDecodeConfig {
                tp: 2,
                layers: 3,
                dim: 16,
                vocab: 16,
                tokens: 4,
            },
            &cost,
        );
        assert_eq!(collective_count(&trace), 2 * 3 * 4);
    }

    #[test]
    fn tp1_moves_no_data() {
        let cost = RingCostModel::new(1e8, 1e8);
        let trace = simulate_tp_decode(
            &TpDecodeConfig {
                tp: 1,
                layers: 2,
                dim: 8,
                vocab: 16,
                tokens: 3,
            },
            &cost,
        );
        // Size-1 groups leave no events, exactly like the exec plane.
        assert_eq!(collective_count(&trace), 0);
    }
}
