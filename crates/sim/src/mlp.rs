//! Cross-plane mirror of the correctness plane's MLP training step.
//!
//! `axonn_core::Network4d::train_step` executes Algorithm 1 with real
//! tensors; this module replays the *same control flow* — per-layer
//! forward / loss / backward with OAR, ORS, OAG, activation
//! checkpointing, and the data-parallel sync — against a
//! [`CostModel`] and records it through the shared `axonn-trace` event
//! vocabulary. Because training is SPMD-symmetric, one representative
//! rank's timeline stands for every rank, and its ordered compute-stream
//! event kinds must equal the kind signature any exec-plane rank records
//! for the same configuration. The root integration tests assert exactly
//! that equality (acceptance criterion 3 of the tracing issue).
//!
//! The mirror reproduces the exec plane's emission rules: collectives
//! over size-1 groups move no data and leave no events; blocking
//! collectives occupy the synchronous channel, asynchronous ones the
//! worker channel; waits record the exposed gap even when it is zero.

use axonn_collectives::{AgAlgo, AlgoPolicy, ArAlgo, BcastAlgo, CollectiveKind, CostModel, RsAlgo};
use axonn_tensor::{pack_geometry, MatMode};
use axonn_trace::{CollOp, EventDetail, RankTrace, Stream, TraceSink};
use std::sync::Arc;

/// The 4D-parallel MLP configuration being mirrored — grid, layer sizes,
/// and the engine options of `axonn_core::NetConfig`.
#[derive(Debug, Clone)]
pub struct MlpStepConfig {
    pub gx: usize,
    pub gy: usize,
    pub gz: usize,
    pub gd: usize,
    /// Global feature sizes; `dims.len() - 1` layers, layer `i`
    /// "transposed" for odd `i`.
    pub dims: Vec<usize>,
    /// Global batch rows (must divide by `gz * gd`).
    pub batch_rows: usize,
    pub oar: bool,
    pub ors: bool,
    pub oag: bool,
    pub kernel_tuning: bool,
    pub activation_checkpointing: bool,
}

impl MlpStepConfig {
    fn row_parts(&self, transposed: bool) -> usize {
        if transposed {
            self.gx
        } else {
            self.gy
        }
    }

    fn col_parts(&self, transposed: bool) -> usize {
        if transposed {
            self.gy
        } else {
            self.gx
        }
    }

    fn world(&self) -> usize {
        self.gx * self.gy * self.gz * self.gd
    }

    fn layers(&self) -> usize {
        self.dims.len() - 1
    }

    /// (m_local, k_local, n_local) of layer `i` on one rank.
    fn shape(&self, i: usize) -> (f64, f64, f64) {
        let transposed = i % 2 == 1;
        let m = self.batch_rows / (self.gd * self.gz);
        let k = self.dims[i] / self.row_parts(transposed);
        let n = self.dims[i + 1] / self.col_parts(transposed);
        (m as f64, k as f64, n as f64)
    }
}

fn coll_op(kind: CollectiveKind) -> CollOp {
    match kind {
        CollectiveKind::AllGather => CollOp::AllGather,
        CollectiveKind::ReduceScatter => CollOp::ReduceScatter,
        CollectiveKind::AllReduce => CollOp::AllReduce,
        CollectiveKind::AllReduceRecursiveDoubling => CollOp::AllReduceRd,
        CollectiveKind::Broadcast => CollOp::Broadcast,
        CollectiveKind::AllGatherRecursiveDoubling => CollOp::AllGatherRd,
        CollectiveKind::ReduceScatterRecursiveHalving => CollOp::ReduceScatterRh,
        CollectiveKind::AllReduceRecursiveHalvingDoubling => CollOp::AllReduceRhd,
        CollectiveKind::AllReduceTree => CollOp::AllReduceTree,
        CollectiveKind::BroadcastTree => CollOp::BroadcastTree,
        CollectiveKind::Barrier | CollectiveKind::PointToPoint => CollOp::Barrier,
    }
}

/// An issued asynchronous collective awaiting its wait point.
struct Ticket {
    op: CollOp,
    seq: u64,
    done: f64,
    real: bool,
}

/// One representative rank's virtual clocks, mirroring
/// `axonn_collectives::comm::ClockState`. Shared by this MLP
/// training-step mirror and the serving-plane decode mirror
/// (`crate::decode`).
pub(crate) struct Mirror<'a> {
    pub(crate) sink: Arc<TraceSink>,
    cost: &'a dyn CostModel,
    /// Message-size algorithm selection — the same policy the exec plane
    /// resolves at world build, so both planes pick (and cost) the same
    /// algorithm for the same collective.
    algo: AlgoPolicy,
    now: f64,
    comm_free_sync: f64,
    comm_free_async: f64,
    next_seq: u64,
}

impl<'a> Mirror<'a> {
    pub(crate) fn new(cost: &'a dyn CostModel) -> Mirror<'a> {
        Mirror {
            sink: TraceSink::new(0),
            cost,
            // Same env-resolved default the exec plane's world build uses.
            algo: AlgoPolicy::from_env(),
            now: 0.0,
            comm_free_sync: 0.0,
            comm_free_async: 0.0,
            next_seq: 0,
        }
    }

    pub(crate) fn finish(self) -> RankTrace {
        self.sink.finish()
    }

    fn bump_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Remap a requested collective to the algorithm the exec plane's
    /// [`AlgoPolicy`] would select for this payload. All-gather `bytes`
    /// are the *gathered* buffer, so the contributed shard is
    /// `bytes / 4 / group`; everything else contributes the full buffer.
    fn effective(&self, kind: CollectiveKind, group_size: usize, bytes: f64) -> CollectiveKind {
        let elems = (bytes / 4.0) as usize;
        match kind {
            CollectiveKind::AllReduce => match self.algo.all_reduce(elems, group_size) {
                ArAlgo::Ring => CollectiveKind::AllReduce,
                ArAlgo::Rhd => CollectiveKind::AllReduceRecursiveHalvingDoubling,
                ArAlgo::Tree => CollectiveKind::AllReduceTree,
            },
            CollectiveKind::ReduceScatter => match self.algo.reduce_scatter(elems, group_size) {
                RsAlgo::Ring => CollectiveKind::ReduceScatter,
                RsAlgo::Rh => CollectiveKind::ReduceScatterRecursiveHalving,
            },
            CollectiveKind::AllGather => {
                match self.algo.all_gather(elems / group_size.max(1), group_size) {
                    AgAlgo::Ring => CollectiveKind::AllGather,
                    AgAlgo::Rd => CollectiveKind::AllGatherRecursiveDoubling,
                }
            }
            CollectiveKind::Broadcast => match self.algo.broadcast(elems, group_size) {
                BcastAlgo::Chain => CollectiveKind::Broadcast,
                BcastAlgo::Tree => CollectiveKind::BroadcastTree,
            },
            other => other,
        }
    }

    /// Record one GEMM span. `(gm, gk, gn)` are the logical GEMM dims
    /// (C is `gm × gn`, contraction `gk`); the mirror derives the packed
    /// panel counters from the same `pack_geometry` math the exec kernels
    /// report, keyed by the trace-facing mode label.
    pub(crate) fn gemm(&mut self, mode: &'static str, gm: f64, gk: f64, gn: f64) {
        let flops = 2.0 * gm * gk * gn;
        let (panels, packed_bytes) = match mode {
            "NN" | "TN->NN" => pack_geometry(MatMode::NN, gm as usize, gk as usize, gn as usize),
            "NT" => pack_geometry(MatMode::NT, gm as usize, gk as usize, gn as usize),
            "TN" => pack_geometry(MatMode::TN, gm as usize, gk as usize, gn as usize),
            // The naive walk packs nothing.
            _ => (0, 0),
        };
        let t0 = self.now;
        self.now += self.cost.compute_seconds(flops);
        self.sink.record_scoped(
            Stream::Compute,
            t0,
            self.now,
            EventDetail::Gemm {
                mode,
                flops,
                packed_bytes,
                panels,
            },
        );
    }

    /// Blocking collective: in the symmetric case the group sync is a
    /// no-op, the op then occupies the synchronous channel.
    pub(crate) fn blocking(&mut self, kind: CollectiveKind, group_size: usize, bytes: f64) {
        if group_size <= 1 {
            return;
        }
        let kind = self.effective(kind, group_size, bytes);
        let entry = self.now;
        let op_seconds = self.cost.collective_seconds(kind, group_size, bytes);
        let begin = entry.max(self.comm_free_sync);
        let done = begin + op_seconds;
        self.comm_free_sync = done;
        self.now = self.now.max(done);
        let seq = self.bump_seq();
        self.sink.record_scoped(
            Stream::Compute,
            entry,
            done,
            EventDetail::Collective {
                op: coll_op(kind),
                group_size,
                bytes: bytes as u64,
                seq,
                blocking: true,
                op_seconds,
            },
        );
    }

    /// Issue an asynchronous collective on the worker channel.
    fn issue(&mut self, kind: CollectiveKind, group_size: usize, bytes: f64) -> Ticket {
        let kind = self.effective(kind, group_size, bytes);
        self.issue_raw(kind, group_size, bytes)
    }

    /// Issue with the kind taken literally, bypassing algorithm
    /// selection — mirrors the exec plane's canonical-order linear
    /// reduce-scatter, which is exempt (its fold order is the gradient
    /// bucketizer's bit-identity contract).
    fn issue_raw(&mut self, kind: CollectiveKind, group_size: usize, bytes: f64) -> Ticket {
        let issue_clock = self.now;
        let op = coll_op(kind);
        let seq = self.bump_seq();
        if group_size <= 1 {
            // Exec skips both the issue marker and the execution span;
            // the wait merges the issue clock (a no-op).
            return Ticket {
                op,
                seq,
                done: issue_clock,
                real: false,
            };
        }
        self.sink.mark(
            Stream::Compute,
            issue_clock,
            EventDetail::Issue {
                op,
                group_size,
                bytes: bytes as u64,
                seq,
            },
        );
        let op_seconds = self.cost.collective_seconds(kind, group_size, bytes);
        let begin = issue_clock.max(self.comm_free_async);
        let done = begin + op_seconds;
        self.comm_free_async = done;
        self.sink.record_scoped(
            Stream::Comm,
            begin,
            done,
            EventDetail::Collective {
                op,
                group_size,
                bytes: bytes as u64,
                seq,
                blocking: false,
                op_seconds,
            },
        );
        Ticket {
            op,
            seq,
            done,
            real: true,
        }
    }

    /// Wait point: the compute stream stalls until completion (the gap
    /// is zero when the op already finished — fully hidden).
    fn wait(&mut self, ticket: &Ticket) {
        let gap_start = self.now;
        self.now = self.now.max(ticket.done);
        if ticket.real {
            self.sink.record_scoped(
                Stream::Compute,
                gap_start,
                self.now,
                EventDetail::OverlapWait {
                    op: ticket.op,
                    seq: ticket.seq,
                },
            );
        }
    }
}

/// Replay one `Network4d::train_step` against `cost`, recording the
/// representative rank's trace. Pass the same [`RingCostModel`]
/// (`axonn_collectives::RingCostModel`) the exec plane runs under and the
/// two planes' compute-stream kind signatures coincide.
pub fn simulate_mlp_step(cfg: &MlpStepConfig, cost: &dyn CostModel) -> RankTrace {
    assert!(cfg.dims.len() >= 2, "need at least one layer");
    assert_eq!(
        cfg.batch_rows % (cfg.gd * cfg.gz),
        0,
        "batch rows must divide by gd*gz"
    );
    let n_layers = cfg.layers();
    let mut m = Mirror::new(cost);

    // ---- forward_local: OAG prefetches, then per-layer forward ----
    let mut prefetched: Vec<Ticket> = Vec::with_capacity(n_layers);
    if cfg.oag {
        for i in 0..n_layers {
            let (_, k, n) = cfg.shape(i);
            m.sink.set_layer(Some(i));
            // iall_gather bytes: the gathered buffer (shard · gz · 4).
            let t = m.issue(CollectiveKind::AllGather, cfg.gz, k * n * 4.0);
            m.sink.set_layer(None);
            prefetched.push(t);
        }
    }
    let fwd = |m: &mut Mirror, i: usize, prefetch: Option<&Ticket>| {
        let transposed = i % 2 == 1;
        let (lm, lk, ln) = cfg.shape(i);
        match prefetch {
            Some(t) => m.wait(t),
            None => m.blocking(CollectiveKind::AllGather, cfg.gz, lk * ln * 4.0),
        }
        m.gemm("NN", lm, lk, ln);
        m.blocking(
            CollectiveKind::AllReduce,
            cfg.row_parts(transposed),
            lm * ln * 4.0,
        );
    };
    for i in 0..n_layers {
        let span = {
            m.sink.set_layer(Some(i));
            m.sink
                .open_span(Stream::Compute, m.now, EventDetail::LayerFwd { layer: i })
        };
        fwd(&mut m, i, prefetched.get(i));
        m.sink.close_span(span, m.now);
        m.sink.set_layer(None);
    }

    // ---- global loss all-reduce (one f32 over the world group) ----
    m.blocking(CollectiveKind::AllReduce, cfg.world(), 4.0);

    // ---- backward, reverse order ----
    let mut pending: Vec<Ticket> = Vec::with_capacity(n_layers);
    for i in (0..n_layers).rev() {
        if cfg.activation_checkpointing && i > 0 {
            // pre_of(i-1): recompute the previous layer's forward from its
            // cached gathered weight — one GEMM plus the output
            // all-reduce, no weight all-gather (`recompute_output`).
            let prev = i - 1;
            let prev_transposed = prev % 2 == 1;
            let (pm, pk, pn) = cfg.shape(prev);
            m.sink.set_layer(Some(prev));
            m.gemm("NN", pm, pk, pn);
            m.blocking(
                CollectiveKind::AllReduce,
                cfg.row_parts(prev_transposed),
                pm * pn * 4.0,
            );
            m.sink.set_layer(None);
        }
        let transposed = i % 2 == 1;
        let (lm, lk, ln) = cfg.shape(i);
        let span = {
            m.sink.set_layer(Some(i));
            m.sink
                .open_span(Stream::Compute, m.now, EventDetail::LayerBwd { layer: i })
        };

        // Line 11: dÎ = dO · Wᵀ (C is lm × lk, contraction ln).
        m.gemm("NT", lm, ln, lk);

        // Line 12: dI all-reduce over the col group (async under OAR).
        let col = cfg.col_parts(transposed);
        let ar = if cfg.oar && col > 1 {
            Some(m.issue(CollectiveKind::AllReduce, col, lm * lk * 4.0))
        } else {
            m.blocking(CollectiveKind::AllReduce, col, lm * lk * 4.0);
            None
        };

        // Line 13: dŴ via the kernel tuner. The exec tuner measures wall
        // time across three strategies; the mirror models the same
        // three-way decision with modelled clocks: the packed TN kernel
        // transposes A into the reused pack buffer (one extra pass over
        // lm·lk elements), the naive column walk runs at ~4× the blocked
        // rate, and the reroute materializes a fresh transposed matrix
        // and re-reads it (two extra passes). Minimum wins, packed on
        // ties — the same priority order the exec tuner applies.
        let flops = 2.0 * lk * lm * ln;
        let (mode, choice) = if cfg.kernel_tuning {
            let pass = cost.compute_seconds(2.0 * lm * lk);
            let packed = cost.compute_seconds(flops) + pass;
            let naive = cost.compute_seconds(flops) * 4.0;
            let reroute = cost.compute_seconds(flops) + 2.0 * pass;
            let (mode, choice) = if naive < packed && naive < reroute {
                ("TN(naive)", "naive_tn")
            } else if reroute < packed {
                ("TN->NN", "transpose_nn")
            } else {
                ("TN", "packed_tn")
            };
            (mode, Some((choice, packed, naive, reroute)))
        } else {
            ("TN", None)
        };
        m.gemm(mode, lk, lm, ln);
        if let Some((choice, direct_seconds, naive_seconds, reroute_seconds)) = choice {
            m.sink.mark(
                Stream::Compute,
                m.now,
                EventDetail::TunerDecision {
                    layer: i,
                    choice,
                    direct_seconds,
                    naive_seconds,
                    reroute_seconds,
                },
            );
        }
        if let Some(t) = &ar {
            m.wait(t);
        }

        // Line 14: dŴ reduce-scatter over Z (async under ORS).
        let rs_bytes = lk * ln * 4.0;
        if cfg.ors {
            let t = m.issue(CollectiveKind::ReduceScatter, cfg.gz, rs_bytes);
            pending.push(t);
        } else {
            m.blocking(CollectiveKind::ReduceScatter, cfg.gz, rs_bytes);
        }
        m.sink.close_span(span, m.now);
        m.sink.set_layer(None);
    }
    // ---- data-parallel gradient phase: the bucketed pipeline ----
    // Mirrors `axonn_core::gradsync::GradSyncPipeline` under the default
    // `GradSyncMode::Bucketed`: the ORS drain feeds each layer's gradient
    // shard into fixed-capacity buckets in reverse-backward order; every
    // sealed bucket immediately issues a non-blocking canonical-order
    // reduce-scatter (unattributed — no layer scope); the ZeRO-1 sharded
    // update is pure local compute (no events); each updated slice
    // returns via a non-blocking all-gather. Both bucket collectives
    // report the padded bucket volume, exactly as the exec plane does.
    const BUCKET_ELEMS: usize = 32 * 1024; // = axonn_core::DEFAULT_BUCKET_ELEMS

    let mut rs_tickets: Vec<(Ticket, usize)> = Vec::new();
    let mut fill = 0usize;
    let mut seal = |m: &mut Mirror, fill: &mut usize| {
        if *fill == 0 {
            return;
        }
        let padded = fill.div_ceil(cfg.gd) * cfg.gd;
        if cfg.gd > 1 {
            // Linear (canonical-order) reduce-scatter: exempt from
            // algorithm selection, like `ireduce_scatter_linear_pooled`.
            let t = m.issue_raw(CollectiveKind::ReduceScatter, cfg.gd, (padded * 4) as f64);
            rs_tickets.push((t, padded));
        }
        *fill = 0;
    };
    for (idx, i) in (0..n_layers).rev().enumerate() {
        if cfg.ors {
            // Drain this layer's deferred Z reduce-scatter, then bucket
            // its gradient — overlapping the remaining waits.
            m.wait(&pending[idx]);
        }
        let (_, lk, ln) = cfg.shape(i);
        let mut rem = (lk / cfg.gz as f64 * ln) as usize;
        while rem > 0 {
            let take = (BUCKET_ELEMS - fill).min(rem);
            fill += take;
            rem -= take;
            if fill == BUCKET_ELEMS {
                seal(&mut m, &mut fill);
            }
        }
    }
    seal(&mut m, &mut fill); // flush the final partial bucket

    // ZeRO-1 step: per bucket in issue order, wait the reduce-scatter
    // and issue the all-gather of the updated slice; then wait gathers.
    let mut gathers: Vec<Ticket> = Vec::with_capacity(rs_tickets.len());
    for (t, padded) in &rs_tickets {
        m.wait(t);
        gathers.push(m.issue(CollectiveKind::AllGather, cfg.gd, (*padded * 4) as f64));
    }
    for t in &gathers {
        m.wait(t);
    }

    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use axonn_collectives::RingCostModel;

    fn cfg() -> MlpStepConfig {
        MlpStepConfig {
            gx: 2,
            gy: 1,
            gz: 2,
            gd: 1,
            dims: vec![8, 8, 8],
            batch_rows: 8,
            oar: true,
            ors: true,
            oag: true,
            kernel_tuning: false,
            activation_checkpointing: false,
        }
    }

    #[test]
    fn mirror_emits_expected_forward_kinds() {
        let cost = RingCostModel::new(1e8, 1e8);
        let trace = simulate_mlp_step(&cfg(), &cost);
        let sig = trace.kind_signature();
        // Two OAG issues, then layer 0: fwd span, AG wait, gemm (row
        // group of layer 0 has size gy = 1 → no forward all-reduce).
        // These tiny payloads select the recursive-doubling / tree
        // algorithms under the default policy.
        assert_eq!(sig[0], "issue:all_gather_rd");
        assert_eq!(sig[1], "issue:all_gather_rd");
        assert_eq!(sig[2], "layer_fwd");
        assert_eq!(sig[3], "wait:all_gather_rd");
        assert_eq!(sig[4], "gemm");
        // Layer 1 is transposed: its row group is X (size 2) → its
        // forward ends with a blocking all-reduce (tree at this size).
        assert!(sig.contains(&"collective:all_reduce_tree".to_string()));
        assert!(trace.streams_monotone());
    }

    #[test]
    fn overlap_off_emits_no_async_events() {
        let mut c = cfg();
        c.oar = false;
        c.ors = false;
        c.oag = false;
        let cost = RingCostModel::new(1e8, 1e8);
        let trace = simulate_mlp_step(&c, &cost);
        for kind in trace.kind_signature() {
            assert!(
                !kind.starts_with("issue:") && !kind.starts_with("wait:"),
                "unexpected async event {kind} with overlap off"
            );
        }
        assert!(trace.stream_events(Stream::Comm).next().is_none());
    }

    #[test]
    fn checkpointing_inserts_recompute_events() {
        let mut c = cfg();
        c.activation_checkpointing = true;
        let cost = RingCostModel::new(1e8, 1e8);
        let with = simulate_mlp_step(&c, &cost).kind_signature();
        let without = simulate_mlp_step(&cfg(), &cost).kind_signature();
        assert!(with.len() > without.len());
    }
}
