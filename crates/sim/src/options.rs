//! Simulation options: which of the paper's optimizations are active and
//! at what fidelity the timeline runs.

use serde::Serialize;

/// Fidelity knobs separating the "observed" simulator from the clean one.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Fidelity {
    /// Per-ring-step latency for intra-node hops (seconds). The analytic
    /// model's Assumption-3 sets this to zero.
    pub alpha_intra: f64,
    /// Per-ring-step latency for inter-node hops (seconds).
    pub alpha_inter: f64,
    /// Relative magnitude of deterministic congestion jitter applied to
    /// every communication operation (0 = none).
    pub noise: f64,
    /// Seed for the jitter stream (a different seed = a different
    /// "run" of the observed system).
    pub seed: u64,
}

impl Fidelity {
    /// Deterministic (no congestion noise) but with realistic
    /// per-ring-step launch/hop latencies — without them, machine-wide
    /// rings would be free and the simulator would happily pick
    /// 32,768-GPU Z rings that no real system would tolerate. (The
    /// *analytic* model keeps Assumption-3 and ignores latency, exactly
    /// as in the paper.)
    pub fn clean() -> Fidelity {
        Fidelity {
            alpha_intra: 2.0e-6,
            alpha_inter: 10.0e-6,
            noise: 0.0,
            seed: 0,
        }
    }

    /// Strictly zero-overhead communication: the simulator then agrees
    /// with the analytic model by construction (used in tests).
    pub fn ideal() -> Fidelity {
        Fidelity {
            alpha_intra: 0.0,
            alpha_inter: 0.0,
            noise: 0.0,
            seed: 0,
        }
    }

    /// Realistic effects the analytic model ignores: microsecond-scale
    /// launch/hop latencies and run-to-run congestion variability
    /// (Section VI-B notes "significant run-to-run performance
    /// variability ... most likely due to network congestion").
    pub fn observed(seed: u64) -> Fidelity {
        Fidelity {
            alpha_intra: 3.0e-6,
            alpha_inter: 14.0e-6,
            noise: 0.08,
            seed,
        }
    }
}

/// Which optimizations (Sections V-C, V-D) are enabled for a simulated
/// batch.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SimOptions {
    /// OAR: overlap the backward all-reduce of input gradients with the
    /// weight-gradient GEMM.
    pub overlap_ar: bool,
    /// ORS: issue weight-gradient reduce-scatters asynchronously and wait
    /// only at the end of the backward pass.
    pub overlap_rs: bool,
    /// OAG: prefetch forward all-gathers in topological order.
    pub overlap_ag: bool,
    /// Automated BLAS kernel tuning: route pathological TN matmuls
    /// through an explicit transpose + NN kernel.
    pub kernel_tuning: bool,
    pub fidelity: Fidelity,
}

impl SimOptions {
    /// Everything off: the no-overlap, untuned baseline of Figs. 5 & 7.
    pub fn baseline() -> SimOptions {
        SimOptions {
            overlap_ar: false,
            overlap_rs: false,
            overlap_ag: false,
            kernel_tuning: false,
            fidelity: Fidelity::clean(),
        }
    }

    /// Everything on: the full production configuration.
    pub fn full() -> SimOptions {
        SimOptions {
            overlap_ar: true,
            overlap_rs: true,
            overlap_ag: true,
            kernel_tuning: true,
            fidelity: Fidelity::clean(),
        }
    }

    pub fn with_fidelity(mut self, f: Fidelity) -> SimOptions {
        self.fidelity = f;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let b = SimOptions::baseline();
        assert!(!b.overlap_ar && !b.overlap_rs && !b.overlap_ag && !b.kernel_tuning);
        let f = SimOptions::full();
        assert!(f.overlap_ar && f.overlap_rs && f.overlap_ag && f.kernel_tuning);
        assert_eq!(Fidelity::clean().noise, 0.0);
        assert_eq!(Fidelity::ideal().alpha_inter, 0.0);
        assert!(Fidelity::clean().alpha_inter > 0.0);
        assert!(Fidelity::observed(1).noise > 0.0);
    }
}
