//! Bridge from simulated traces into the live telemetry plane.
//!
//! The simulator publishes the **same metric names** as the real
//! thread-backed runtime (`collective.{op}.*`, `gemm.{mode}.*`,
//! `overlap.*`), so one `axonnctl monitor` / Prometheus scrape works
//! against either plane. The post-hoc [`MetricsRegistry`] derived from
//! the trace is folded into a [`LiveRegistry`] — a dashboard pointed at
//! a simulated job sees the vocabulary it would see on a running one.

use axonn_trace::{LiveRegistry, MetricsRegistry, RankTrace};

/// Aggregate `traces` and publish the result into `registry` under the
/// runtime's canonical metric names.
pub fn publish_live_metrics(traces: &[RankTrace], registry: &LiveRegistry) {
    registry.absorb(&MetricsRegistry::from_traces(traces));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate_batch_traced, SimOptions};
    use axonn_cluster::{BandwidthDb, Machine};
    use axonn_gpt::model_by_billions;
    use axonn_perfmodel::Grid4d;
    use axonn_trace::TraceSink;

    #[test]
    fn sim_publishes_runtime_metric_names() {
        let machine = Machine::frontier();
        let db = BandwidthDb::profile(&machine);
        let model = model_by_billions(20);
        let grid = Grid4d::new(8, 2, 4, 8);
        let sink = TraceSink::new(0);
        simulate_batch_traced(
            &machine,
            &db,
            grid,
            &model,
            1 << 21,
            SimOptions::full(),
            &sink,
        );
        let reg = LiveRegistry::new_enabled(true);
        publish_live_metrics(&[sink.finish()], &reg);
        let snap = reg.snapshot();
        // Parity anchor: the names a live world would publish.
        assert!(
            snap.counters
                .keys()
                .any(|k| k.starts_with("collective.") && k.ends_with(".calls")),
            "no collective call counters: {:?}",
            snap.counters.keys().collect::<Vec<_>>()
        );
        assert!(
            snap.counters.keys().any(|k| k.starts_with("gemm.")),
            "no gemm counters"
        );
        assert!(
            snap.histograms.keys().any(|k| k.ends_with(".bytes_hist")),
            "no bytes histograms"
        );
        // And they render through the same Prometheus path.
        let prom = snap.prometheus_text();
        assert!(prom.contains("axonn_collective_"), "{prom}");
    }
}
