//! Configuration selection on top of the simulator: the paper's
//! "best of the model's top-10" procedure (Fig. 7's "Perf model" bars),
//! the Megatron+HSDP baseline, and weak-scaling series helpers.

use crate::batch::{simulate_batch, BatchBreakdown};
use crate::options::SimOptions;
use axonn_cluster::{BandwidthDb, Machine};
use axonn_gpt::GptConfig;
use axonn_perfmodel::{rank_configs, Grid4d};
use rayon::prelude::*;
use serde::Serialize;

/// Bytes of training state per parameter: bf16 weight + bf16 gradient +
/// fp32 master weight + two fp32 Adam moments.
pub const STATE_BYTES_PER_PARAM: f64 = 16.0;
/// Fraction of GPU memory available for parameters/optimizer (the rest is
/// activations, buffers, fragmentation).
pub const USABLE_MEM_FRACTION: f64 = 0.8;

/// One point of a scaling study.
#[derive(Debug, Clone, Serialize)]
pub struct ScalePoint {
    pub model: String,
    pub gpus: usize,
    pub grid: Grid4d,
    pub batch_tokens: usize,
    pub breakdown: BatchBreakdown,
    /// Sustained model flop/s across the whole partition.
    pub model_flops_per_second: f64,
    /// Percentage of the vendor-advertised aggregate peak.
    pub pct_advertised_peak: f64,
    /// Percentage of the empirically-measured aggregate peak.
    pub pct_empirical_peak: f64,
}

fn mem_limit(machine: &Machine) -> f64 {
    machine.mem_per_gpu * USABLE_MEM_FRACTION
}

/// Pick the fastest configuration among the performance model's top-`k`
/// predictions by simulating each — exactly the launch procedure of
/// Section V-B ("we can pick the top few configurations for actual
/// experiments").
pub fn pick_best_config(
    machine: &Machine,
    db: &BandwidthDb,
    model: &GptConfig,
    batch_tokens: usize,
    gpus: usize,
    opts: SimOptions,
    top_k: usize,
) -> (Grid4d, BatchBreakdown) {
    let ranked = rank_configs(
        machine,
        db,
        model,
        batch_tokens,
        gpus,
        Some(mem_limit(machine)),
    );
    assert!(
        !ranked.is_empty(),
        "no feasible 4D configuration for {} on {gpus} GPUs of {}",
        model.name,
        machine.name
    );
    ranked
        .par_iter()
        .with_max_len(1)
        .take(top_k)
        .map(|r| {
            (
                r.grid,
                simulate_batch(machine, db, r.grid, model, batch_tokens, opts),
            )
        })
        .min_by(|a, b| a.1.total_seconds.total_cmp(&b.1.total_seconds))
        .expect("top-k selection is non-empty")
}

/// The Fig. 7 baseline: Megatron-style 1D tensor parallelism within a
/// node (`G_x = G_node`) combined with hybrid sharded data parallelism
/// across nodes (`G_z` sharding chosen just large enough for the model
/// state to fit, data parallelism over the remainder) — "a hybrid of 1D
/// tensor parallelism within node and hybrid sharded data parallelism
/// across nodes (similar to FSDP)".
pub fn baseline_config(machine: &Machine, model: &GptConfig, gpus: usize) -> Grid4d {
    let gx = machine.gpus_per_node.min(gpus);
    let state = model.num_parameters() as f64 * STATE_BYTES_PER_PARAM;
    let mut gz = 1usize;
    while state / (gx * gz) as f64 > mem_limit(machine) {
        gz *= 2;
        assert!(
            gx * gz <= gpus,
            "model {} cannot fit on {gpus} GPUs of {} even fully sharded",
            model.name,
            machine.name
        );
    }
    let gd = gpus / (gx * gz);
    Grid4d::new(gx, 1, gz, gd)
}

/// Simulate a weak-scaling series: for each `(model, gpus)` pair, select
/// the best configuration (per `opts`) and record times and sustained
/// flop/s. `batch_tokens` is held constant across the series, as in the
/// paper's headline runs.
pub fn weak_scaling_series(
    machine: &Machine,
    db: &BandwidthDb,
    series: &[(GptConfig, usize)],
    batch_tokens: usize,
    opts: SimOptions,
) -> Vec<ScalePoint> {
    series
        .iter()
        .map(|(model, gpus)| {
            let (grid, breakdown) =
                pick_best_config(machine, db, model, batch_tokens, *gpus, opts, 30);
            scale_point(machine, model, *gpus, grid, batch_tokens, breakdown)
        })
        .collect()
}

/// Assemble a [`ScalePoint`] from a simulated breakdown.
pub fn scale_point(
    machine: &Machine,
    model: &GptConfig,
    gpus: usize,
    grid: Grid4d,
    batch_tokens: usize,
    breakdown: BatchBreakdown,
) -> ScalePoint {
    let flops = model.model_flops_per_iter(batch_tokens);
    let rate = flops / breakdown.total_seconds;
    ScalePoint {
        model: model.name.clone(),
        gpus,
        grid,
        batch_tokens,
        breakdown,
        model_flops_per_second: rate,
        pct_advertised_peak: 100.0 * rate / (gpus as f64 * machine.advertised_peak()),
        pct_empirical_peak: 100.0 * rate / (gpus as f64 * machine.empirical_peak()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axonn_gpt::model_by_billions;

    fn setup() -> (Machine, BandwidthDb) {
        let m = Machine::frontier();
        let db = BandwidthDb::profile(&m);
        (m, db)
    }

    #[test]
    fn baseline_is_megatron_plus_hsdp() {
        let (m, _) = setup();
        let model = model_by_billions(20);
        let g = baseline_config(&m, &model, 512);
        assert_eq!(g.gx, 8, "TP fills the node");
        assert_eq!(g.gy, 1);
        // 20B * 16B = 320 GB; gx=8 gives 40 GB per GCD > 51.2 GB limit?
        // 320/8 = 40 <= 51.2, so gz = 1.
        assert_eq!(g.gz, 1);
        assert_eq!(g.gpus(), 512);
    }

    #[test]
    fn baseline_shards_when_model_is_big() {
        let (m, _) = setup();
        let model = model_by_billions(80);
        let g = baseline_config(&m, &model, 1024);
        // 80B*16 = 1.28 TB; /8 = 160 GB per GCD -> need gz >= 4.
        assert!(g.gz >= 4);
        assert_eq!(g.gpus(), 1024);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn baseline_rejects_impossible_fits() {
        let (m, _) = setup();
        let model = model_by_billions(640);
        let _ = baseline_config(&m, &model, 8);
    }

    #[test]
    fn best_config_beats_baseline() {
        // The heart of Fig. 7: the model-selected 4D configuration beats
        // Megatron+HSDP.
        let (m, db) = setup();
        let model = model_by_billions(20);
        let gpus = 512;
        let batch = 1 << 22;
        let opts = SimOptions::baseline();
        let base_grid = baseline_config(&m, &model, gpus);
        let base = simulate_batch(&m, &db, base_grid, &model, batch, opts);
        let (best_grid, best) = pick_best_config(&m, &db, &model, batch, gpus, opts, 10);
        assert!(
            best.total_seconds < base.total_seconds,
            "best {best_grid} {:.3}s vs baseline {base_grid} {:.3}s",
            best.total_seconds,
            base.total_seconds
        );
    }

    #[test]
    fn weak_scaling_series_stays_efficient_at_moderate_scale() {
        let (m, db) = setup();
        let series = vec![
            (model_by_billions(5), 512),
            (model_by_billions(10), 1024),
            (model_by_billions(20), 2048),
        ];
        let pts = weak_scaling_series(&m, &db, &series, 1 << 24, SimOptions::full());
        assert_eq!(pts.len(), 3);
        // Weak scaling: batch time roughly flat (within 2x across the
        // series) and efficiency above 20% of advertised peak.
        let t0 = pts[0].breakdown.total_seconds;
        for p in &pts {
            assert!(p.breakdown.total_seconds < 2.0 * t0);
            assert!(
                p.pct_advertised_peak > 20.0,
                "{}: {:.1}%",
                p.model,
                p.pct_advertised_peak
            );
            assert!(p.pct_empirical_peak > p.pct_advertised_peak);
        }
    }

    #[test]
    fn flops_accounting_consistency() {
        let (m, db) = setup();
        let model = model_by_billions(10);
        let grid = Grid4d::new(8, 1, 2, 8);
        let batch = 1 << 21;
        let b = simulate_batch(&m, &db, grid, &model, batch, SimOptions::full());
        let p = scale_point(&m, &model, grid.gpus(), grid, batch, b);
        let recomputed = model.model_flops_per_iter(batch) / p.breakdown.total_seconds;
        assert!((p.model_flops_per_second - recomputed).abs() < 1e-6 * recomputed);
        assert!(p.pct_advertised_peak < 100.0);
    }
}
