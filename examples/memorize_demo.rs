//! Memorization and the Goldfish loss, in miniature (Section VIII).
//!
//! Trains two copies of the same GPT on repeated synthetic "Wikipedia"
//! articles — one with the standard loss, one with the Goldfish loss —
//! and shows that only the first reproduces articles verbatim.
//!
//! ```sh
//! cargo run --release --example memorize_demo
//! ```

use axonn::memorize::{run_scale, ExperimentConfig, GoldfishParams, ModelScale};

fn main() {
    let mut cfg = ExperimentConfig::smoke();
    cfg.articles_per_bucket = 3;
    cfg.bucket_epochs = vec![1, 4, 6];
    cfg.seq_len = 40;
    cfg.gen_tokens = 12;
    cfg.steps_per_batch = 10;
    cfg.lr_max = 3.5e-3;
    cfg.lr_min = 2e-3;
    let scale = ModelScale::new("demo GPT (d=128, 3 layers)", 128, 4, 3);

    println!(
        "Training on 3 buckets of {} articles (1 / 4 / 6 epochs) + untouched control…\n",
        cfg.articles_per_bucket
    );

    let plain = run_scale(&scale, &cfg);
    let goldfish = run_scale(&scale, &cfg.clone().with_goldfish(GoldfishParams::paper()));

    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>12}",
        "", "1 epoch", "4 epochs", "6 epochs", "control(0)"
    );
    let fmt = |r: &axonn::memorize::ScaleResult| {
        format!(
            "{:<28} {:>9.0}% {:>9.0}% {:>9.0}% {:>11.0}%",
            "",
            r.buckets[0].exact_match_pct,
            r.buckets[1].exact_match_pct,
            r.buckets[2].exact_match_pct,
            r.buckets[3].exact_match_pct
        )
    };
    println!("standard loss{}", &fmt(&plain)[13..]);
    println!("goldfish loss (k=2, h=13){}", &fmt(&goldfish)[25..]);

    println!(
        "\nExact match = the model greedily reproduces the last {} tokens of an",
        cfg.gen_tokens
    );
    println!("article verbatim when prompted with its beginning. The Goldfish loss");
    println!("drops ~1/k of tokens from the loss via a context-keyed hash, so verbatim");
    println!("reproduction of long spans becomes impossible — memorization collapses");
    println!("to the control level while the model still trains on the same data.");
}
