//! Plan a large training run: use the communication performance model
//! (Equations 1–7) to rank 4D configurations for a Table II model on a
//! chosen machine, then confirm the top candidates with the simulator —
//! the workflow AxoNN automates before touching a single GPU-hour.
//!
//! ```sh
//! cargo run --release --example plan_training -- [frontier|perlmutter|alps] [billions] [gpus]
//! ```

use axonn::cluster::{BandwidthDb, Machine};
use axonn::gpt::{model_by_billions, HEADLINE_BATCH_TOKENS};
use axonn::perfmodel::rank_configs;
use axonn::sim::{simulate_batch, SimOptions};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let machine_name = args.get(1).map(String::as_str).unwrap_or("frontier");
    let billions: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(20);
    let gpus: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1024);

    let machine = Machine::by_name(machine_name);
    let db = BandwidthDb::profile(&machine);
    let model = model_by_billions(billions);
    let batch = HEADLINE_BATCH_TOKENS;

    println!(
        "Planning {} on {} GPUs of {} (batch = {:.1}M tokens)",
        model.name,
        gpus,
        machine.name,
        batch as f64 / 1e6
    );
    println!(
        "Model: {} layers, hidden {}, {:.1}B parameters\n",
        model.num_layers,
        model.hidden_size,
        model.num_parameters() as f64 / 1e9
    );

    let mem_limit = machine.mem_per_gpu * 0.8;
    let ranked = rank_configs(&machine, &db, &model, batch, gpus, Some(mem_limit));
    println!(
        "{} feasible 4D configurations; top 10 by predicted communication time:",
        ranked.len()
    );
    println!(
        "{:>4}  {:>22}  {:>14}  {:>14}  {:>12}",
        "rank", "config (x*y*z*d)", "predicted comm", "simulated", "exposed comm"
    );
    let mut best: Option<(String, f64)> = None;
    for (i, rc) in ranked.iter().take(10).enumerate() {
        let b = simulate_batch(&machine, &db, rc.grid, &model, batch, SimOptions::full());
        let label = format!("{}", rc.grid);
        if best.as_ref().is_none_or(|(_, t)| b.total_seconds < *t) {
            best = Some((label.clone(), b.total_seconds));
        }
        println!(
            "{:>4}  {:>22}  {:>12.2} s  {:>12.2} s  {:>10.2} s",
            i + 1,
            label,
            rc.predicted_comm_seconds,
            b.total_seconds,
            b.exposed_comm_seconds
        );
    }
    let (grid, secs) = best.expect("at least one feasible configuration");
    let rate = model.model_flops_per_iter(batch) / secs;
    println!(
        "\nRecommended launch: {grid} -> {:.2} s/iter, {:.1} Pflop/s sustained ({:.1}% of advertised peak)",
        secs,
        rate / 1e15,
        100.0 * rate / (gpus as f64 * machine.advertised_peak())
    );
}
