//! Reproduce a miniature weak-scaling study (the Fig. 6 / Fig. 8
//! workflow) on any of the three machine models, printing time per batch
//! and sustained flop/s at each scale.
//!
//! ```sh
//! cargo run --release --example scaling_study -- frontier
//! ```

use axonn::cluster::{BandwidthDb, Machine};
use axonn::gpt::model_by_billions;
use axonn::sim::{weak_scaling_series, SimOptions};

fn main() {
    let machine_name = std::env::args().nth(1).unwrap_or_else(|| "frontier".into());
    let machine = Machine::by_name(&machine_name);
    let db = BandwidthDb::profile(&machine);

    let series: Vec<_> = [(5usize, 512usize), (10, 1024), (20, 2048), (40, 4096)]
        .iter()
        .map(|&(b, g)| (model_by_billions(b), g))
        .collect();

    println!("Weak scaling on {} (16.8M-token batches):\n", machine.name);
    let points = weak_scaling_series(&machine, &db, &series, 1 << 24, SimOptions::full());
    println!(
        "{:>8} {:>7} {:>22} {:>12} {:>12} {:>10}",
        "model", "GPUs", "config", "time/batch", "Pflop/s", "% peak"
    );
    for p in &points {
        println!(
            "{:>8} {:>7} {:>22} {:>10.2} s {:>12.1} {:>9.1}%",
            p.model,
            p.gpus,
            format!("{}", p.grid),
            p.breakdown.total_seconds,
            p.model_flops_per_second / 1e15,
            p.pct_advertised_peak
        );
    }
    let eff = 100.0
        * (points.last().unwrap().model_flops_per_second / points.last().unwrap().gpus as f64)
        / (points[0].model_flops_per_second / points[0].gpus as f64);
    println!("\nWeak-scaling efficiency at the largest point: {eff:.1}%");
}
