//! Quickstart: train a small network with the 4D hybrid parallel engine
//! on 8 simulated GPUs (threads) and verify it reproduces serial training.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use axonn::engine::{Activation, GridTopology, Network4d, OverlapConfig, SerialMlp};
use axonn::exec::run_spmd;
use axonn::tensor::Matrix;

fn main() {
    // A 3-layer MLP; feature sizes must divide the grid dimensions.
    const DIMS: [usize; 4] = [32, 64, 64, 32];
    const SEED: u64 = 7;
    const STEPS: usize = 20;
    const LR: f32 = 0.01;

    let x = Matrix::random(32, DIMS[0], 1.0, 100);
    let t = Matrix::random(32, DIMS[3], 1.0, 101);

    // Serial reference.
    let mut serial = SerialMlp::new(&DIMS, Activation::Gelu, SEED);
    let serial_losses: Vec<f32> = (0..STEPS).map(|_| serial.train_step(&x, &t, LR)).collect();

    // The same training run on a 2x2x2x1 grid: 2-way X tensor
    // parallelism x 2-way Y x 2-way Z sharding (Algorithm 1), with all
    // three overlap optimizations (OAR/ORS/OAG) enabled.
    let (gx, gy, gz, gd) = (2usize, 2usize, 2usize, 1usize);
    let x2 = x.clone();
    let t2 = t.clone();
    let results = run_spmd(gx * gy * gz * gd, move |comm| {
        let grid = GridTopology::new(gx, gy, gz, gd, comm.rank());
        let mut net = Network4d::new(
            comm,
            grid,
            &DIMS,
            Activation::Gelu,
            SEED,
            OverlapConfig::all(),
            true, // first-batch BLAS kernel tuning
        );
        (0..STEPS)
            .map(|_| net.train_step(&x2, &t2, LR))
            .collect::<Vec<f32>>()
    });
    let parallel_losses = &results[0];

    println!("step   serial loss   4D-parallel loss (2x2x2x1)");
    for (i, (s, p)) in serial_losses.iter().zip(parallel_losses).enumerate() {
        if i % 4 == 0 || i == STEPS - 1 {
            println!("{i:>4}   {s:>11.5}   {p:>11.5}");
        }
    }
    let max_rel = serial_losses
        .iter()
        .zip(parallel_losses)
        .map(|(s, p)| ((s - p) / s).abs())
        .fold(0.0f32, f32::max);
    println!("\nmax relative loss deviation: {max_rel:.2e}");
    assert!(max_rel < 1e-3, "parallel training diverged from serial");
    println!("4D-parallel training reproduces the serial reference. ✓");
}
