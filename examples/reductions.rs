//! The 4D algorithm as a generalization of prior art (end of Section
//! V-A): run the same training problem under the grid settings that
//! reduce to FSDP/ZeRO-3, hybrid sharded data parallelism (ZeRO++),
//! Megatron-style 1D tensor parallelism, and the full 4D hybrid — and
//! show they all reproduce the serial reference while sharding memory
//! very differently.
//!
//! ```sh
//! cargo run --release -p axonn --example reductions
//! ```

use axonn::engine::{Activation, GridTopology, Network4d, OverlapConfig, SerialMlp};
use axonn::exec::run_spmd;
use axonn::tensor::Matrix;

const DIMS: [usize; 4] = [32, 64, 64, 32];
const SEED: u64 = 5;

fn main() {
    let x = Matrix::random(32, DIMS[0], 1.0, 50);
    let t = Matrix::random(32, DIMS[3], 1.0, 51);

    let mut serial = SerialMlp::new(&DIMS, Activation::Gelu, SEED);
    let mut serial_loss = 0.0;
    for _ in 0..5 {
        serial_loss = serial.train_step(&x, &t, 0.01);
    }

    type Case = (&'static str, (usize, usize, usize, usize));
    let cases: [Case; 5] = [
        ("FSDP / ZeRO-3        (1,1,8,1)", (1, 1, 8, 1)),
        ("HSDP / ZeRO++        (1,1,4,2)", (1, 1, 4, 2)),
        ("Megatron 1D TP + DP  (4,1,1,2)", (4, 1, 1, 2)),
        ("2D TP                (4,2,1,1)", (4, 2, 1, 1)),
        ("full 4D              (2,2,2,2)", (2, 2, 2, 2)),
    ];

    println!("serial reference loss after 5 steps: {serial_loss:.5}\n");
    println!(
        "{:<34} {:>12} {:>16} {:>14}",
        "scheme (gx,gy,gz,gd)", "final loss", "vs serial", "weight shard"
    );
    for (name, (gx, gy, gz, gd)) in cases {
        let x2 = x.clone();
        let t2 = t.clone();
        let results = run_spmd(gx * gy * gz * gd, move |comm| {
            let grid = GridTopology::new(gx, gy, gz, gd, comm.rank());
            let mut net = Network4d::new(
                comm,
                grid,
                &DIMS,
                Activation::Gelu,
                SEED,
                OverlapConfig::all(),
                false,
            );
            let mut loss = 0.0;
            for _ in 0..5 {
                loss = net.train_step(&x2, &t2, 0.01);
            }
            loss
        });
        let loss = results[0];
        let rel = ((loss - serial_loss) / serial_loss).abs();
        // Per-rank share of the largest layer's weights.
        let tp = gx * gy * gz;
        let shard_elems = DIMS[1] * DIMS[2] / tp;
        println!(
            "{name:<34} {loss:>12.5} {rel:>15.2e} {:>10} elems",
            shard_elems
        );
    }
    println!("\nEvery scheme is the SAME algorithm at a different grid point — and every");
    println!("one reproduces serial training. Only the memory/communication trade changes.");
}
