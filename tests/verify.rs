//! Workspace-level verification integration: negative-path defect
//! seeding against real extracted schedules (exact rank/op-index
//! diagnostics), property-based "verifier-accepted implies run_spmd
//! completes", and cross-plane agreement between the dry-extracted
//! schedule and the simulator's mirrored collective sequence.

use axonn::collectives::{RingCostModel, SchedEvent, SchedKind};
use axonn::engine::{
    default_mlp_shape, default_transformer_shape, extract_mlp_schedules,
    extract_transformer_schedules, transformer_grid_fits, Activation, GridTopology, Network4d,
    OverlapConfig, TransformerStack,
};
use axonn::exec::run_spmd;
use axonn::perfmodel::Grid4d;
use axonn::sim::{simulate_mlp_step, MlpStepConfig};
use axonn::tensor::Matrix;
use axonn::trace::{CollOp, EventDetail, Stream};
use axonn::verify::{check_schedules, inject, DefectKind, Diagnostic};
use proptest::prelude::*;

/// The `(group, seq)`-keyed wait and its matching async issue in a clean
/// stream — the pair the reorder/missing-wait defects manipulate.
fn first_wait_and_issue(stream: &[SchedEvent]) -> (usize, usize) {
    let w = stream
        .iter()
        .position(|e| matches!(e, SchedEvent::Wait { .. }))
        .expect("stream has a wait");
    let SchedEvent::Wait { group_key, seq } = &stream[w] else {
        unreachable!()
    };
    let i = (0..w)
        .position(|i| match &stream[i] {
            SchedEvent::Issue(op) => !op.blocking && op.group_key == *group_key && op.seq == *seq,
            _ => false,
        })
        .expect("wait has a matching issue");
    (i, w)
}

#[test]
fn count_mismatch_is_named_at_op_zero_on_the_corrupted_rank() {
    let (dims, batch) = default_mlp_shape(4);
    let mut streams = extract_mlp_schedules(2, 2, 1, 1, &dims, batch, OverlapConfig::all());
    assert!(check_schedules(&streams).is_ok(), "clean schedule rejected");

    assert!(inject(&mut streams, 1, DefectKind::CountMismatch));
    let report = check_schedules(&streams);
    assert!(!report.is_ok());
    // The first issue of a stream is necessarily op #0 of its own
    // communicator, so the diagnostic must name index 0 and rank 1.
    assert!(
        report.diagnostics.iter().any(|d| matches!(
            d,
            Diagnostic::Mismatch {
                index: 0,
                rank_a,
                rank_b,
                ..
            } if *rank_a == 1 || *rank_b == 1
        )),
        "no op-#0 mismatch naming rank 1: {report}"
    );
}

#[test]
fn missing_wait_is_named_at_the_orphaned_issue_index() {
    let (dims, batch) = default_mlp_shape(4);
    let mut streams = extract_mlp_schedules(2, 2, 1, 1, &dims, batch, OverlapConfig::all());
    let (issue_at, _) = first_wait_and_issue(&streams[1]);

    assert!(inject(&mut streams, 1, DefectKind::MissingWait));
    let report = check_schedules(&streams);
    assert!(!report.is_ok());
    assert!(
        report.diagnostics.iter().any(|d| matches!(
            d,
            Diagnostic::UnwaitedHandle { rank: 1, issue_index, .. } if *issue_index == issue_at
        )),
        "no unwaited-handle diagnostic at rank 1 event #{issue_at}: {report}"
    );
}

#[test]
fn reorder_without_divergent_pair_becomes_wait_before_issue() {
    // On a pure tensor-parallel grid every communicator repeats one
    // (kind, elems) shape, so the injector falls back to swapping a wait
    // ahead of its own issue; the lint must name the landing index.
    let (dims, batch) = default_mlp_shape(4);
    let mut streams = extract_mlp_schedules(2, 2, 1, 1, &dims, batch, OverlapConfig::all());
    let (issue_at, _) = first_wait_and_issue(&streams[1]);

    assert!(inject(&mut streams, 1, DefectKind::Reorder));
    let report = check_schedules(&streams);
    assert!(!report.is_ok());
    assert!(
        report.diagnostics.iter().any(|d| matches!(
            d,
            Diagnostic::WaitBeforeIssue { rank: 1, event_index, .. } if *event_index == issue_at
        )),
        "no wait-before-issue diagnostic at rank 1 event #{issue_at}: {report}"
    );
}

#[test]
fn reorder_with_divergent_pair_is_a_matching_mismatch() {
    // With gz = 2 each z-communicator interleaves all-gathers and
    // reduce-scatters, so the injector finds a same-communicator
    // differing pair and the matching checker names the divergence.
    let (dims, batch) = default_mlp_shape(4);
    let mut streams = extract_mlp_schedules(2, 1, 2, 1, &dims, batch, OverlapConfig::all());
    assert!(check_schedules(&streams).is_ok());

    assert!(inject(&mut streams, 1, DefectKind::Reorder));
    let report = check_schedules(&streams);
    assert!(!report.is_ok());
    assert!(
        report.diagnostics.iter().any(|d| matches!(
            d,
            Diagnostic::Mismatch { rank_a, rank_b, left: Some(_), right: Some(_), .. }
                if *rank_a == 1 || *rank_b == 1
        )),
        "no matching mismatch naming rank 1: {report}"
    );
}

#[test]
fn transformer_defects_are_rejected_too() {
    let shape = default_transformer_shape(4);
    // All six defect families against real extracted streams: the
    // data-parallel dimension gives the gradsync overlap pipeline, whose
    // tagged pooled async issues are the race/slab injection sites.
    for defect in DefectKind::ALL {
        let mut streams = extract_transformer_schedules(1, 2, 1, 2, &shape, OverlapConfig::all());
        assert!(check_schedules(&streams).is_ok(), "clean schedule rejected");
        assert!(inject(&mut streams, 1, defect), "{defect:?} applicable");
        assert!(
            !check_schedules(&streams).is_ok(),
            "{defect:?} not rejected"
        );
    }
}

#[test]
fn injected_overlap_race_names_rank_op_lane_and_buffer() {
    let shape = default_transformer_shape(4);
    let mut streams = extract_transformer_schedules(1, 2, 1, 2, &shape, OverlapConfig::all());
    assert!(inject(&mut streams, 1, DefectKind::OverlapRace));
    // The injector writes to the first async issue's buffer right after
    // the issue; recover the expected site from the corrupted stream.
    let (write_index, buf) = streams[1]
        .iter()
        .enumerate()
        .find_map(|(i, e)| match e {
            SchedEvent::BufWrite { buf, .. } => Some((i, *buf)),
            _ => None,
        })
        .expect("injected write present");

    let report = check_schedules(&streams);
    let race = report
        .diagnostics
        .iter()
        .find_map(|d| match d {
            Diagnostic::OverlapRace {
                rank,
                write_index: w,
                buf: b,
                ..
            } => Some((*rank, *w, *b)),
            _ => None,
        })
        .unwrap_or_else(|| panic!("no overlap-race diagnostic: {report}"));
    assert_eq!(race, (1, write_index, buf));
    // The rendered diagnostic names every coordinate of the defect.
    let text = report.to_string();
    assert!(
        text.contains(&format!(
            "rank 1 event #{write_index}: write to buffer {buf} (injected-write) races with async"
        )) && text.contains("lane ")
            && text.contains("the pending collective may still read or write the buffer"),
        "incomplete race diagnostic: {text}"
    );
}

#[test]
fn injected_early_recycle_names_the_unreleased_slab() {
    let shape = default_transformer_shape(4);
    let mut streams = extract_transformer_schedules(1, 2, 1, 2, &shape, OverlapConfig::all());
    assert!(inject(&mut streams, 1, DefectKind::EarlyRecycle));
    let (recycle_index, slab) = streams[1]
        .iter()
        .enumerate()
        .find_map(|(i, e)| match e {
            SchedEvent::SlabRecycle { slab } => Some((i, *slab)),
            _ => None,
        })
        .expect("injected recycle present");

    let report = check_schedules(&streams);
    assert!(
        report.diagnostics.iter().any(|d| matches!(
            d,
            Diagnostic::EarlyRecycle { rank: 1, recycle_index: r, slab: s, .. }
                if *r == recycle_index && *s == slab
        )),
        "no early-recycle diagnostic at rank 1 event #{recycle_index}: {report}"
    );
    assert!(
        report.to_string().contains(&format!(
            "rank 1 event #{recycle_index}: slab {slab} recycled before async"
        )),
        "wrong wording: {report}"
    );
}

#[test]
fn injected_slab_aliasing_names_both_ops() {
    let shape = default_transformer_shape(4);
    let mut streams = extract_transformer_schedules(1, 2, 1, 2, &shape, OverlapConfig::all());
    assert!(inject(&mut streams, 1, DefectKind::SlabReuse));

    let report = check_schedules(&streams);
    let found = report
        .diagnostics
        .iter()
        .find_map(|d| match d {
            Diagnostic::SlabReuse { rank, slab, .. } => Some((*rank, *slab)),
            _ => None,
        })
        .unwrap_or_else(|| panic!("no slab-reuse diagnostic: {report}"));
    assert_eq!(found.0, 1);
    let text = report.to_string();
    assert!(
        text.contains("aliased by concurrent async ops") || text.contains("reused after recycle"),
        "wrong wording: {text}"
    );
}

#[test]
fn serve_decode_schedule_certifies_with_timed_checks() {
    for tp in [1usize, 2, 4] {
        let streams = axonn::serve::extract_tp_decode_schedule(tp, 2, 3);
        let report = check_schedules(&streams);
        assert!(report.is_ok(), "tp={tp}: {report}");
        let names: Vec<&str> = report.timings_us.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["lints", "matching", "deadlock", "hb", "slab"]);
    }
}

#[test]
fn serve_schedule_matches_sim_decode_mirror() {
    // Serving-plane twin of the MLP cross-plane test below: the dry
    // extractor and the perf-model mirror must replay the same decode
    // collective sequence.
    use axonn::sim::{simulate_tp_decode, TpDecodeConfig};
    for tp in [2usize, 4] {
        let (layers, tokens) = (2usize, 3usize);
        let streams = axonn::serve::extract_tp_decode_schedule(tp, layers, tokens);
        let extracted: Vec<&'static str> = streams[0]
            .iter()
            .filter_map(|e| match e {
                SchedEvent::Issue(op) => Some(sched_coll_name(op.kind)),
                _ => None,
            })
            .collect();

        let trace = simulate_tp_decode(
            &TpDecodeConfig {
                tp,
                layers,
                dim: 8 * tp, // the extractor's synthetic checkpoint shape
                vocab: 16,
                tokens,
            },
            &RingCostModel::new(1e8, 1e8),
        );
        let mirrored: Vec<&'static str> = trace
            .stream_events(Stream::Compute)
            .filter_map(|e| match &e.detail {
                EventDetail::Collective { op, .. } => Some(op.name()),
                EventDetail::Issue { op, .. } => Some(op.name()),
                _ => None,
            })
            .collect();
        assert_eq!(extracted, mirrored, "planes disagree on tp={tp}");
    }
}

/// SchedKind → the simulator's collective vocabulary. The schedule plane
/// distinguishes ring vs linear vs recursive-doubling variants; the
/// trace vocabulary names the collective itself.
fn sched_coll_name(kind: SchedKind) -> &'static str {
    match kind {
        SchedKind::AllGather => CollOp::AllGather.name(),
        SchedKind::ReduceScatter | SchedKind::ReduceScatterLinear => CollOp::ReduceScatter.name(),
        SchedKind::AllReduce | SchedKind::AllReduceLinear => CollOp::AllReduce.name(),
        SchedKind::AllReduceRd => CollOp::AllReduceRd.name(),
        SchedKind::AllGatherRd => CollOp::AllGatherRd.name(),
        SchedKind::ReduceScatterRh => CollOp::ReduceScatterRh.name(),
        SchedKind::AllReduceRhd => CollOp::AllReduceRhd.name(),
        SchedKind::AllReduceTree => CollOp::AllReduceTree.name(),
        SchedKind::Broadcast => CollOp::Broadcast.name(),
        SchedKind::BroadcastTree => CollOp::BroadcastTree.name(),
        SchedKind::Barrier => CollOp::Barrier.name(),
    }
}

#[test]
fn dry_extracted_schedule_matches_sim_collective_sequence() {
    // Rank 0's dry-extracted issue order must equal the performance
    // plane's mirrored collective order: both planes claim to replay the
    // same Algorithm-1 control flow, and this pins them together.
    for (gx, gy, gz, gd) in [(2usize, 1usize, 2usize, 1usize), (1, 2, 2, 2)] {
        let dims = vec![8usize, 8, 8];
        let batch = 8usize;
        let streams = extract_mlp_schedules(gx, gy, gz, gd, &dims, batch, OverlapConfig::all());
        let extracted: Vec<&'static str> = streams[0]
            .iter()
            .filter_map(|e| match e {
                SchedEvent::Issue(op) => Some(sched_coll_name(op.kind)),
                _ => None,
            })
            .collect();

        let trace = simulate_mlp_step(
            &MlpStepConfig {
                gx,
                gy,
                gz,
                gd,
                dims,
                batch_rows: batch,
                oar: true,
                ors: true,
                oag: true,
                kernel_tuning: false,
                activation_checkpointing: false,
            },
            &RingCostModel::new(1e8, 1e8),
        );
        let mirrored: Vec<&'static str> = trace
            .stream_events(Stream::Compute)
            .filter_map(|e| match &e.detail {
                EventDetail::Collective { op, .. } => Some(op.name()),
                EventDetail::Issue { op, .. } => Some(op.name()),
                _ => None,
            })
            .collect();
        assert_eq!(
            extracted, mirrored,
            "planes disagree on ({gx},{gy},{gz},{gd})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Soundness of the certificate: any randomly chosen grid whose
    /// extracted MLP schedule the verifier accepts must complete a real
    /// `run_spmd` training step (the exec teardown re-checks the live
    /// streams, so a hang or mismatch would fail here).
    #[test]
    fn accepted_mlp_configs_complete_under_run_spmd(
        world_pick in 0usize..3,
        grid_pick in 0u64..1_000,
        seed in 0u64..500,
    ) {
        let world = [2usize, 4, 8][world_pick];
        let grids = Grid4d::enumerate(world);
        let g = grids[(grid_pick as usize) % grids.len()];
        let (dims, batch) = default_mlp_shape(world);

        let streams =
            extract_mlp_schedules(g.gx, g.gy, g.gz, g.gd, &dims, batch, OverlapConfig::all());
        let report = check_schedules(&streams);
        prop_assert!(report.is_ok(), "verifier rejected {g:?}: {report}");

        let dims2 = dims.clone();
        let losses = run_spmd(world, move |comm| {
            let grid = GridTopology::new(g.gx, g.gy, g.gz, g.gd, comm.rank());
            let mut net = Network4d::new(
                comm,
                grid,
                &dims2,
                Activation::Gelu,
                seed,
                OverlapConfig::all(),
                false,
            );
            let x = Matrix::random(batch, dims2[0], 1.0, seed + 1);
            let t = Matrix::random(batch, *dims2.last().unwrap(), 1.0, seed + 2);
            net.train_step(&x, &t, 0.01)
        });
        prop_assert!(losses.iter().all(|l| l.is_finite()));
    }

    /// Same soundness property for the transformer stack.
    #[test]
    fn accepted_transformer_configs_complete_under_run_spmd(
        grid_pick in 0u64..1_000,
        seed in 0u64..500,
    ) {
        let world = 4usize;
        let shape = default_transformer_shape(world);
        let grids: Vec<Grid4d> = Grid4d::enumerate(world)
            .into_iter()
            .filter(|g| transformer_grid_fits(g.gx, g.gy, g.gz, g.gd, &shape))
            .collect();
        let g = grids[(grid_pick as usize) % grids.len()];

        let streams =
            extract_transformer_schedules(g.gx, g.gy, g.gz, g.gd, &shape, OverlapConfig::all());
        let report = check_schedules(&streams);
        prop_assert!(report.is_ok(), "verifier rejected {g:?}: {report}");

        let n_tokens = shape.seqs * shape.seq_len;
        let tokens: Vec<usize> = (0..n_tokens).map(|i| (i * 5 + 1) % shape.vocab).collect();
        let targets: Vec<usize> = (0..n_tokens).map(|i| (i * 3 + 2) % shape.vocab).collect();
        let losses = run_spmd(world, move |comm| {
            let grid = GridTopology::new(g.gx, g.gy, g.gz, g.gd, comm.rank());
            let mut stack = TransformerStack::new(
                &grid,
                shape.vocab,
                shape.hidden,
                shape.n_heads,
                shape.n_layers,
                shape.seq_len,
                seed,
                OverlapConfig::all(),
            );
            stack.train_step(&comm, &grid, &tokens, &targets, 0.01)
        });
        prop_assert!(losses.iter().all(|l| l.is_finite()));
    }
}
