//! Workspace-level tracing integration: a traced 4-rank 4D training step
//! exported as Chrome trace-event JSON, overlap-efficiency accounting,
//! cross-plane (exec vs sim) event-kind agreement, and determinism.

use axonn::collectives::{CostModel, RingCostModel};
use axonn::engine::{
    Activation, GradSyncMode, GridTopology, NetConfig, Network4d, OverlapConfig, TransformerStack,
};
use axonn::exec::{run_spmd_traced, TracedRun};
use axonn::sim::{simulate_mlp_step, MlpStepConfig};
use axonn::tensor::Matrix;
use axonn::trace::{chrome_trace_json, EventDetail, OverlapReport, RankTrace, Stream};
use std::sync::Arc;

const DIMS: [usize; 3] = [8, 8, 8];
const SEED: u64 = 42;
const BATCH_ROWS: usize = 8;

fn batch() -> (Matrix, Matrix) {
    (
        Matrix::random(BATCH_ROWS, DIMS[0], 1.0, 1),
        Matrix::random(BATCH_ROWS, DIMS[2], 1.0, 2),
    )
}

fn cost() -> Arc<dyn CostModel> {
    Arc::new(RingCostModel::new(1e8, 1e8))
}

/// One traced training step on the correctness plane.
fn traced_step(
    (gx, gy, gz, gd): (usize, usize, usize, usize),
    overlap: OverlapConfig,
    kernel_tuning: bool,
    activation_checkpointing: bool,
) -> TracedRun<f32> {
    let world = gx * gy * gz * gd;
    run_spmd_traced(world, cost(), move |comm| {
        let grid = GridTopology::new(gx, gy, gz, gd, comm.rank());
        let mut net = Network4d::with_config(
            comm,
            grid,
            &DIMS,
            Activation::Gelu,
            SEED,
            NetConfig {
                overlap,
                kernel_tuning,
                activation_checkpointing,
                ..NetConfig::default()
            },
        );
        let (x, t) = batch();
        net.train_step(&x, &t, 0.01)
    })
}

/// The same step mirrored on the performance plane.
fn mirrored_step(
    (gx, gy, gz, gd): (usize, usize, usize, usize),
    overlap: OverlapConfig,
    kernel_tuning: bool,
    activation_checkpointing: bool,
) -> RankTrace {
    simulate_mlp_step(
        &MlpStepConfig {
            gx,
            gy,
            gz,
            gd,
            dims: DIMS.to_vec(),
            batch_rows: BATCH_ROWS,
            oar: overlap.oar,
            ors: overlap.ors,
            oag: overlap.oag,
            kernel_tuning,
            activation_checkpointing,
        },
        &RingCostModel::new(1e8, 1e8),
    )
}

#[test]
fn traced_step_exports_chrome_json_with_spans_per_rank() {
    let run = traced_step((2, 1, 2, 1), OverlapConfig::all(), true, false);
    assert_eq!(run.traces.len(), 4);

    // Acceptance (1): the export parses, and every rank recorded at least
    // one collective span and one compute span.
    let chrome = chrome_trace_json(&run.traces);
    let doc: serde_json::Value = serde_json::from_str(&chrome).expect("valid chrome JSON");
    match doc {
        serde_json::Value::Object(fields) => {
            let events = fields
                .iter()
                .find(|(k, _)| k == "traceEvents")
                .map(|(_, v)| v)
                .expect("traceEvents key");
            match events {
                serde_json::Value::Array(evs) => assert!(evs.len() > run.traces.len()),
                other => panic!("traceEvents is not an array: {other:?}"),
            }
        }
        other => panic!("chrome export is not an object: {other:?}"),
    }
    for trace in &run.traces {
        assert!(
            trace.events.iter().any(|e| matches!(
                e.detail,
                EventDetail::Collective { .. } | EventDetail::Issue { .. }
            )),
            "rank {} recorded no collective events",
            trace.rank
        );
        assert!(
            trace
                .events
                .iter()
                .any(|e| matches!(e.detail, EventDetail::Gemm { .. })),
            "rank {} recorded no compute spans",
            trace.rank
        );
        assert!(
            trace.streams_monotone(),
            "rank {} stream disorder",
            trace.rank
        );
    }
}

#[test]
fn overlap_hides_comm_without_changing_numerics() {
    // Acceptance (2): with OAR/ORS/OAG the hidden-communication fraction
    // is strictly greater than with overlap off, at identical numerics.
    let grid = (2, 1, 2, 1);
    let off = traced_step(grid, OverlapConfig::default(), false, false);
    let on = traced_step(grid, OverlapConfig::all(), false, false);
    assert_eq!(off.results, on.results, "overlap changed training numerics");

    let rep_off = OverlapReport::from_traces(&off.traces);
    let rep_on = OverlapReport::from_traces(&on.traces);
    assert!(rep_off.total_issued_seconds > 0.0);
    assert_eq!(
        rep_off.total_hidden_seconds, 0.0,
        "blocking schedule cannot hide communication"
    );
    assert!(
        rep_on.total_hidden_seconds > 0.0,
        "overlapped schedule hid nothing"
    );
    assert!(
        rep_on.overlap_efficiency > rep_off.overlap_efficiency,
        "efficiency on {} <= off {}",
        rep_on.overlap_efficiency,
        rep_off.overlap_efficiency
    );
    // Per-layer attribution exists for every layer.
    for layer in 0..DIMS.len() - 1 {
        assert!(
            rep_on.per_layer.iter().any(|l| l.layer == Some(layer)),
            "layer {layer} missing from the overlap report"
        );
    }
}

#[test]
fn exec_and_sim_planes_agree_on_event_kinds() {
    // Acceptance (3): for the same configuration, the exec plane and the
    // sim mirror record the same ordered sequence of compute-stream event
    // kinds on every rank.
    let cases = [
        ((2, 1, 2, 1), OverlapConfig::all(), false),
        ((2, 1, 2, 1), OverlapConfig::all(), true),
        ((2, 1, 2, 1), OverlapConfig::default(), false),
        ((2, 2, 1, 1), OverlapConfig::all(), false),
        ((1, 2, 2, 2), OverlapConfig::all(), true),
    ];
    for (grid, overlap, ckpt) in cases {
        let exec = traced_step(grid, overlap, true, ckpt);
        let mirror = mirrored_step(grid, overlap, true, ckpt).kind_signature();
        assert!(!mirror.is_empty());
        for trace in &exec.traces {
            assert_eq!(
                trace.kind_signature(),
                mirror,
                "plane divergence on rank {} for grid {grid:?} overlap {overlap:?} ckpt {ckpt}",
                trace.rank
            );
        }
    }
}

#[test]
fn bucketed_pipeline_overlaps_data_group_collectives() {
    // Acceptance: the bucketed gradient pipeline's data-group collectives
    // (the only unattributed async reduce-scatters/all-gathers) show
    // hidden time — their reduce-scatters stream under the remaining ORS
    // drain and the blocking norm/embedding Z reductions — while the
    // serial per-tensor oracle's data-group traffic is all blocking, so
    // its data-parallel overlap efficiency is identically zero. Numerics
    // are bit-identical either way.
    let run_mode = |mode: GradSyncMode| {
        run_spmd_traced(8, cost(), move |comm| {
            let grid = GridTopology::new(1, 2, 2, 2, comm.rank());
            let mut stack = TransformerStack::new(&grid, 8, 8, 2, 2, 4, SEED, OverlapConfig::all());
            stack.set_grad_sync(mode);
            // Tiny buckets so several seal (and issue) mid-drain.
            stack.set_grad_bucket_elems(8);
            let tokens: Vec<usize> = (0..16).map(|i| (i * 5 + 1) % 8).collect();
            let targets: Vec<usize> = (0..16).map(|i| (i * 3 + 2) % 8).collect();
            stack.train_step(&comm, &grid, &tokens, &targets, 0.01)
        })
    };
    let bucketed = run_mode(GradSyncMode::Bucketed);
    let oracle = run_mode(GradSyncMode::PerTensor);
    assert_eq!(
        bucketed.results, oracle.results,
        "sync modes diverged numerically"
    );

    let dp_bucketed = OverlapReport::data_parallel_overlap(&bucketed.traces);
    let dp_oracle = OverlapReport::data_parallel_overlap(&oracle.traces);
    assert!(
        dp_bucketed.total_issued_seconds > 0.0,
        "bucketed pipeline issued no data-group collectives"
    );
    assert!(
        dp_bucketed.overlap_efficiency > 0.0,
        "bucketed data-group collectives hid nothing: {dp_bucketed:?}"
    );
    assert_eq!(
        dp_oracle.total_issued_seconds, 0.0,
        "oracle has no async data-group collectives"
    );
    assert_eq!(dp_oracle.overlap_efficiency, 0.0);
}

#[test]
fn traced_runs_are_byte_identical_and_monotone() {
    // Determinism: two identical seeded runs produce byte-identical
    // canonical event streams (wall time excluded by construction), with
    // per-stream virtual timestamps monotone. Kernel tuning stays off:
    // its decisions depend on real wall-clock measurements.
    let run = || traced_step((2, 1, 2, 1), OverlapConfig::all(), false, true);
    let a = run();
    let b = run();
    assert_eq!(a.results, b.results);
    for (ta, tb) in a.traces.iter().zip(&b.traces) {
        assert_eq!(ta.canonical_json(), tb.canonical_json(), "rank {}", ta.rank);
        assert!(ta.streams_monotone());
        // The async stream, when present, is monotone too (covered by
        // streams_monotone) and pairs one wait per issue.
        let issues = ta
            .events
            .iter()
            .filter(|e| matches!(e.detail, EventDetail::Issue { .. }))
            .count();
        let waits = ta
            .events
            .iter()
            .filter(|e| matches!(e.detail, EventDetail::OverlapWait { .. }))
            .count();
        let async_spans = ta
            .stream_events(Stream::Comm)
            .filter(|e| {
                matches!(
                    e.detail,
                    EventDetail::Collective {
                        blocking: false,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(issues, waits, "rank {} unmatched async ops", ta.rank);
        assert_eq!(issues, async_spans, "rank {} orphan async spans", ta.rank);
    }
}
