//! Workspace-level telemetry-plane integration: the live metrics
//! registry, the straggler/hang watchdog and the crash-surviving flight
//! recorder working together across `collectives`, `exec`, `ft` and
//! `verify`.
//!
//! The headline scenario is the observability acceptance check: a grid
//! whose collective schedule the `verify` plane certified deadlock-free
//! is run with an `ft` FaultPlan that wall-stalls one link. The watchdog
//! must name the stalled rank, the lane and the peer it is waiting on,
//! classify the stall as a *runtime* fault (the schedule cannot be the
//! bug — it was certified), and persist that rank's flight recorder.

use axonn::collectives::{CommWorld, ProcessGroup, WallStallRule};
use axonn::exec::{run_spmd, Watchdog, WatchdogConfig};
use axonn::ft::FaultPlan;
use axonn::trace::{flight_dir, LiveRegistry};
use axonn::verify::check_schedules;
use std::sync::OnceLock;
use std::time::Duration;

const WORLD: usize = 4;
const ELEMS: usize = 1024;
const STEPS: usize = 3;

/// The training-shaped loop every scenario below runs: a few world-wide
/// all-reduces (tree-selected at this payload size under the default
/// policy: reduce-up + broadcast-down lanes).
fn step_loop(c: &axonn::collectives::Comm, world: usize, steps: usize) {
    let g = ProcessGroup::new((0..world).collect());
    for _ in 0..steps {
        let mut grads = vec![c.rank() as f32; ELEMS];
        c.all_reduce(&g, &mut grads);
    }
}

#[test]
fn watchdog_names_stalled_rank_on_certified_grid() {
    // 1. Certify the schedule on a dry world: same collective sequence,
    //    no data movement. A stall later cannot be a schedule bug.
    let dry = CommWorld::dry(WORLD);
    for c in &dry {
        step_loop(c, WORLD, STEPS);
    }
    let streams = dry[0]
        .schedule_streams()
        .expect("dry worlds record schedules");
    let report = check_schedules(&streams);
    assert!(report.is_ok(), "grid failed certification:\n{report}");

    // 2. Run the certified schedule for real, with the ft plane holding
    //    the 0 -> 1 link for 900 ms (a wall-clock stall: the receiver is
    //    genuinely parked, unlike the virtual-clock StallRule).
    let hold = Duration::from_millis(900);
    let plan = FaultPlan::none().stall_link_wall(
        0,
        WallStallRule {
            src: 0,
            dst: 1,
            hold,
        },
    );
    let registry = LiveRegistry::new_enabled(true);
    let comms = CommWorld::builder(WORLD)
        .faults(plan.transport_config(0))
        .metrics(registry.clone())
        .build();
    let probe = comms[0].clone();
    let dog = Watchdog::spawn(
        probe,
        WatchdogConfig {
            threshold: Duration::from_millis(250),
            poll: Duration::from_millis(25),
            certified: true,
        },
    );
    let handles: Vec<_> = comms
        .into_iter()
        .map(|c| std::thread::spawn(move || step_loop(&c, WORLD, STEPS)))
        .collect();
    for h in handles {
        h.join().expect("stalled run must still complete");
    }
    let reports = dog.stop();

    // The stalled rank is diagnosed with lane, peer and pending op. The
    // hold is on rank 0's tree-broadcast send down to rank 1, so rank 1
    // is the parked receiver.
    let stalled = reports
        .iter()
        .find(|r| r.rank == 1)
        .unwrap_or_else(|| panic!("rank 1 not reported; got {reports:?}"));
    assert_eq!(stalled.op, Some("all_reduce_tree"), "{stalled:?}");
    assert_eq!(stalled.lane, Some("tree_down"), "{stalled:?}");
    assert_eq!(stalled.peer, Some(0), "{stalled:?}");
    assert!(
        stalled.heartbeat_age_ms >= 250,
        "reported too early: {stalled:?}"
    );
    // Certified grid => runtime-fault classification, not schedule bug.
    assert!(
        stalled.classification.contains("runtime fault"),
        "{stalled:?}"
    );
    assert!(stalled.classification.contains("certified"), "{stalled:?}");
    // The flight recorder for the stalled rank was persisted.
    let dump = stalled
        .dump
        .as_ref()
        .unwrap_or_else(|| panic!("no flight dump written: {stalled:?}"));
    let body = std::fs::read_to_string(dump)
        .unwrap_or_else(|e| panic!("flight dump {} unreadable: {e}", dump.display()));
    assert!(body.contains("\"rank\":1"), "{body}");
    assert!(body.contains("lane tree_down"), "{body}");
    assert!(body.contains("enter all_reduce_tree"), "{body}");

    // 3. The live registry saw the run: same metric vocabulary as the
    //    post-hoc trace aggregation (and the sim publisher).
    let snap = registry.snapshot();
    let calls = snap
        .counters
        .get("collective.all_reduce_tree.calls")
        .copied()
        .unwrap_or(0);
    assert_eq!(
        calls,
        (WORLD * STEPS) as u64,
        "counters: {:?}",
        snap.counters
    );
    assert!(snap
        .prometheus_text()
        .contains("axonn_collective_all_reduce_tree_calls"));
}

#[test]
fn merely_slow_rank_is_not_a_watchdog_false_positive() {
    // A rank that is slow (straggling compute, here an explicit sleep
    // scaled by AXONN_BENCH_SLOWDOWN) but still making progress must not
    // trip a watchdog whose threshold exceeds the per-step delay.
    let slowdown: u64 = std::env::var("AXONN_BENCH_SLOWDOWN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .clamp(1, 10);
    let delay = Duration::from_millis(20 * slowdown);
    let comms = CommWorld::create(2);
    let probe = comms[0].clone();
    let dog = Watchdog::spawn(
        probe,
        WatchdogConfig {
            threshold: Duration::from_millis(500),
            poll: Duration::from_millis(20),
            certified: true,
        },
    );
    let handles: Vec<_> = comms
        .into_iter()
        .map(|c| {
            std::thread::spawn(move || {
                let g = ProcessGroup::new((0..2).collect());
                for _ in 0..8 {
                    if c.rank() == 1 {
                        std::thread::sleep(delay);
                    }
                    let mut v = vec![1.0f32; 256];
                    c.all_reduce(&g, &mut v);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let reports = dog.stop();
    assert!(
        reports.is_empty(),
        "slow-but-progressing rank misreported: {reports:?}"
    );
}

#[test]
fn flight_recorder_survives_a_rank_panic() {
    // When a rank panics, `exec` poisons the world and dumps every
    // rank's flight ring before re-raising — the post-mortem artifact
    // for crashes, not just hangs.
    static WID: OnceLock<u64> = OnceLock::new();
    let result = std::panic::catch_unwind(|| {
        run_spmd(2, |c| {
            let _ = WID.set(c.world_id());
            if c.rank() == 1 {
                panic!("telemetry-test crash");
            }
            step_loop(&c, 2, 1);
        })
    });
    assert!(result.is_err(), "the crash must propagate");
    let id = WID.get().expect("world id captured before the crash");
    let dump = flight_dir().join(format!("flight_w{id}_rank1.json"));
    let body = std::fs::read_to_string(&dump)
        .unwrap_or_else(|e| panic!("no crash dump at {}: {e}", dump.display()));
    assert!(body.contains("telemetry-test crash"), "{body}");
    assert!(body.contains("\"rank\":1"), "{body}");
}
