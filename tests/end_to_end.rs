//! Workspace-level integration: the full 4D stack — grid, collectives,
//! Algorithm 1, overlap, kernel tuning, data parallelism, virtual time —
//! exercised together and checked against the serial reference.

use axonn::collectives::RingCostModel;
use axonn::engine::{Activation, GridTopology, Network4d, OverlapConfig, SerialMlp};
use axonn::exec::{run_spmd, run_spmd_timed};
use axonn::tensor::Matrix;
use std::sync::Arc;

const DIMS: [usize; 4] = [16, 32, 32, 16];
const SEED: u64 = 99;

fn batch() -> (Matrix, Matrix) {
    (
        Matrix::random(16, DIMS[0], 1.0, 1),
        Matrix::random(16, DIMS[3], 1.0, 2),
    )
}

#[test]
fn sixteen_rank_full_4d_training_matches_serial() {
    let (x, t) = batch();
    let mut serial = SerialMlp::new(&DIMS, Activation::Gelu, SEED);
    let serial_losses: Vec<f32> = (0..4).map(|_| serial.train_step(&x, &t, 0.01)).collect();

    let losses = run_spmd(16, move |comm| {
        let grid = GridTopology::new(2, 2, 2, 2, comm.rank());
        let mut net = Network4d::new(
            comm,
            grid,
            &DIMS,
            Activation::Gelu,
            SEED,
            OverlapConfig::all(),
            true,
        );
        let (x, t) = batch();
        (0..4)
            .map(|_| net.train_step(&x, &t, 0.01))
            .collect::<Vec<f32>>()
    });
    for (s, p) in serial_losses.iter().zip(&losses[0]) {
        assert!(((s - p) / s).abs() < 2e-3, "serial {s} vs parallel {p}");
    }
}

#[test]
fn overlap_reduces_virtual_batch_time() {
    // Same computation, timed world: the OAR/ORS/OAG schedule must give a
    // strictly smaller virtual clock than the blocking schedule.
    let cost = Arc::new(RingCostModel::new(5.0e9, 1.0e9));
    let run = |overlap: OverlapConfig| -> f64 {
        let cost = cost.clone();
        let times = run_spmd_timed(8, cost, move |comm| {
            let grid = GridTopology::new(2, 1, 4, 1, comm.rank());
            let mut net = Network4d::new(comm, grid, &DIMS, Activation::Gelu, SEED, overlap, false);
            let (x, t) = batch();
            for _ in 0..2 {
                net.train_step(&x, &t, 0.01);
            }
            net.comm().now()
        });
        times.into_iter().fold(0.0, f64::max)
    };
    let blocking = run(OverlapConfig::default());
    let overlapped = run(OverlapConfig::all());
    assert!(
        overlapped < blocking,
        "overlap {overlapped} should beat blocking {blocking}"
    );
}

#[test]
fn virtual_time_is_deterministic() {
    let cost = Arc::new(RingCostModel::new(1.0e9, 1.0e8).with_latency(1e-6));
    let run = || -> Vec<f64> {
        let cost = cost.clone();
        run_spmd_timed(4, cost, move |comm| {
            let grid = GridTopology::new(2, 1, 2, 1, comm.rank());
            let mut net = Network4d::new(
                comm,
                grid,
                &DIMS,
                Activation::Relu,
                SEED,
                OverlapConfig::all(),
                false,
            );
            let (x, t) = batch();
            net.train_step(&x, &t, 0.01);
            net.comm().now()
        })
    };
    assert_eq!(run(), run());
}

#[test]
fn kernel_tuner_reports_choices_after_first_batch() {
    let tuned = run_spmd(4, move |comm| {
        let grid = GridTopology::new(2, 1, 2, 1, comm.rank());
        let mut net = Network4d::new(
            comm,
            grid,
            &DIMS,
            Activation::Gelu,
            SEED,
            OverlapConfig::default(),
            true,
        );
        let (x, t) = batch();
        net.train_step(&x, &t, 0.01);
        net.tuned_layers()
    });
    // Every layer's dW kernel gets tuned during the first batch.
    assert!(tuned.iter().all(|&n| n == DIMS.len() - 1));
}
