//! End-to-end fault tolerance: kill a rank mid-run, restart under the
//! supervisor from the last grid-sharded checkpoint, and verify the
//! recovery contract against an uninterrupted run —
//!
//! - same grid: bit-identical losses and final weights (training is
//!   Markovian in the weights and the step-indexed batch schedule, and
//!   shard/restore is a pure copy);
//! - different grid (elastic resume): bit-identical restored weights,
//!   then divergence only by collective summation order — final weights
//!   within floating-point tolerance;
//! - the whole lifecycle (checkpoint, failure, resume, reshard, restart,
//!   completed) visible in the Chrome-trace export.

use axonn::engine::Activation;
use axonn::ft::{train_supervised, FaultPlan, RecoveryPolicy, TrainOutcome, TrainSpec};
use axonn::perfmodel::Grid4d;
use axonn::tensor::Matrix;
use axonn::trace::chrome_trace_json;
use std::path::PathBuf;
use std::sync::Arc;

const DIMS: [usize; 3] = [8, 16, 8];
const SEED: u64 = 17;
const TOTAL_STEPS: u64 = 6;

fn spec() -> TrainSpec {
    TrainSpec {
        dims: DIMS.to_vec(),
        act: Activation::Gelu,
        seed: SEED,
        lr: 0.02,
        total_steps: TOTAL_STEPS,
        checkpoint_every: 2,
        batch: Arc::new(|step| {
            (
                Matrix::random(4, DIMS[0], 1.0, 1000 + step),
                Matrix::random(4, DIMS[2], 1.0, 2000 + step),
            )
        }),
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("axonn_ft_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// An uninterrupted supervised run on `grid` — the reference the
/// recovery contract is checked against.
fn baseline(grid: Grid4d, tag: &str) -> TrainOutcome {
    let dir = tmpdir(tag);
    let out = train_supervised(
        &spec(),
        &RecoveryPolicy {
            grids: vec![grid],
            max_restarts: 0,
            plan: FaultPlan::none(),
        },
        &dir,
    )
    .unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(out.attempts, 1, "baseline must not restart");
    out
}

#[test]
fn same_grid_kill_and_resume_is_bit_identical() {
    let grid = Grid4d::new(2, 2, 1, 1);
    let reference = baseline(grid, "base_same");

    // Rank 2 dies at the top of step 3; the last checkpoint is step 2.
    let dir = tmpdir("kill_same");
    let out = train_supervised(
        &spec(),
        &RecoveryPolicy {
            grids: vec![grid],
            max_restarts: 1,
            plan: FaultPlan::none().kill(0, 2, 3),
        },
        &dir,
    )
    .unwrap();
    assert_eq!(out.attempts, 2, "exactly one restart");

    // The resumed attempt replays steps 2..6 with bit-identical losses.
    assert_eq!(out.losses.first().map(|&(s, _)| s), Some(2));
    for &(step, loss) in &out.losses {
        let (_, ref_loss) = reference.losses[step as usize];
        assert_eq!(
            loss.to_bits(),
            ref_loss.to_bits(),
            "step {step}: resumed loss {loss} vs uninterrupted {ref_loss}"
        );
    }

    // Final weights are bit-equal, layer by layer.
    assert_eq!(out.weights.len(), reference.weights.len());
    for (i, (a, b)) in out.weights.iter().zip(&reference.weights).enumerate() {
        assert_eq!(
            a.as_slice(),
            b.as_slice(),
            "layer {i}: resumed weights differ from uninterrupted run"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cross_grid_resume_stays_within_tolerance() {
    let src = Grid4d::new(2, 2, 1, 1);
    let dst = Grid4d::new(1, 2, 2, 1);
    let reference = baseline(src, "base_cross");

    // Same kill, but the relaunch reshards onto a different 4-rank grid.
    let dir = tmpdir("kill_cross");
    let out = train_supervised(
        &spec(),
        &RecoveryPolicy {
            grids: vec![src, dst],
            max_restarts: 1,
            plan: FaultPlan::none().kill(0, 2, 3),
        },
        &dir,
    )
    .unwrap();
    assert_eq!(out.attempts, 2);

    // The resumed grid reduces in a different order, so losses and
    // weights drift by rounding only.
    for &(step, loss) in &out.losses {
        let (_, ref_loss) = reference.losses[step as usize];
        let rel = (loss - ref_loss).abs() / ref_loss.abs().max(1e-3);
        assert!(
            rel < 2e-3,
            "step {step}: resharded loss {loss} vs uninterrupted {ref_loss}"
        );
    }
    for (i, (a, b)) in out.weights.iter().zip(&reference.weights).enumerate() {
        assert!(
            a.approx_eq(b, 1e-2),
            "layer {i}: resharded weights drifted beyond tolerance (max diff {})",
            a.max_abs_diff(b)
        );
    }

    // The reshard is recorded in the recovery lifecycle.
    let kinds = out.trace.kind_signature();
    assert!(
        kinds.contains(&"recovery:reshard".to_string()),
        "lifecycle missing reshard: {kinds:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_lifecycle_exports_to_chrome_trace() {
    let grid = Grid4d::new(2, 1, 1, 1);
    let dir = tmpdir("chrome");
    let out = train_supervised(
        &spec(),
        &RecoveryPolicy {
            grids: vec![grid],
            max_restarts: 1,
            plan: FaultPlan::none().kill(0, 1, 3),
        },
        &dir,
    )
    .unwrap();
    let kinds = out.trace.kind_signature();
    for expected in [
        "recovery:checkpoint",
        "recovery:failure_detected",
        "recovery:resume",
        "recovery:restart",
        "recovery:completed",
    ] {
        assert!(
            kinds.contains(&expected.to_string()),
            "missing {expected} in {kinds:?}"
        );
    }

    // The export parses as JSON and carries the recovery markers.
    let json = chrome_trace_json(&[out.trace]);
    let doc: serde_json::Value = serde_json::from_str(&json).expect("valid chrome JSON");
    drop(doc);
    assert!(json.contains("recovery:failure_detected"));
    assert!(json.contains("recovery:completed"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dropped_message_recovers_via_restart_not_hang() {
    // A lost transport message in attempt 0 surfaces as a recv timeout →
    // PeerLost → supervised restart; nothing hangs and the run completes.
    let grid = Grid4d::new(2, 1, 1, 1);
    let dir = tmpdir("droprec");
    let out = train_supervised(
        &spec(),
        &RecoveryPolicy {
            grids: vec![grid],
            max_restarts: 1,
            plan: FaultPlan::none()
                .drop_message(
                    0,
                    axonn::collectives::DropRule {
                        src: 0,
                        dst: 1,
                        nth: 3,
                    },
                )
                .with_recv_timeout(std::time::Duration::from_millis(200)),
        },
        &dir,
    )
    .unwrap();
    assert_eq!(out.attempts, 2, "the drop must force exactly one restart");
    assert_eq!(out.losses.last().map(|&(s, _)| s), Some(TOTAL_STEPS - 1));
    std::fs::remove_dir_all(&dir).ok();
}
